#include "stream/minibatch.h"

#include <cmath>
#include <limits>
#include <utility>

namespace sssj {

MiniBatchJoin::MiniBatchJoin(const DecayParams& params, IndexFactory factory,
                             double window_factor)
    : params_(params),
      factory_(std::move(factory)),
      window_len_(params.tau * std::max(window_factor, 1.0)) {}

namespace {
// End of the window anchored at `start`. For the degenerate τ = 0 (θ = 1
// with λ > 0: only simultaneous pairs can qualify) the window is the
// smallest half-open interval containing `start`, so equal timestamps
// share a window and any later timestamp closes it.
Timestamp WindowEndFor(Timestamp start, double tau) {
  if (tau > 0.0) return start + tau;  // +inf tau → window never closes
  return std::nextafter(start, std::numeric_limits<Timestamp>::infinity());
}
}  // namespace

bool MiniBatchJoin::Push(const StreamItem& x, ResultSink* sink) {
  if (started_ && x.ts < last_ts_) return false;
  if (!started_) {
    started_ = true;
    window_end_ = WindowEndFor(x.ts, window_len_);
  }
  last_ts_ = x.ts;
  if (x.ts >= window_end_) {
    // x starts a new window. O(1) advance, even across long silent gaps:
    CloseWindow(sink);
    if (window_len_ > 0.0 && x.ts < window_end_ + window_len_) {
      // x lands in the window adjacent to the one just closed — the only
      // case where pairs may span the boundary.
      window_end_ += window_len_;
    } else {
      // The gap exceeds a full window: nothing in the buffered window can
      // pair with x, so flush it too and re-anchor at x.
      CloseWindow(sink);
      window_end_ = WindowEndFor(x.ts, window_len_);
    }
  }
  cur_.push_back(x);
  ++stats_.vectors_processed;
  return true;
}

void MiniBatchJoin::Flush(ResultSink* sink) {
  // First close indexes W_{k−1} and queries it with W_k; the second close
  // indexes the final window (its intra-window pairs).
  CloseWindow(sink);
  CloseWindow(sink);
  started_ = false;
  window_end_ = 0.0;
  last_ts_ = 0.0;
}

void MiniBatchJoin::CloseWindow(ResultSink* sink) {
  if (prev_.empty() && cur_.empty()) return;

  // Global max vector over both windows (§6.1): makes AP prefix filtering
  // sound for queries coming from the current window.
  MaxVector m;
  for (const StreamItem& item : prev_) m.UpdateFrom(item.vec, nullptr);
  for (const StreamItem& item : cur_) m.UpdateFrom(item.vec, nullptr);

  std::unique_ptr<BatchIndex> index = factory_();
  scratch_pairs_.clear();
  index->Construct(prev_, m, &scratch_pairs_);
  EmitWithDecay(scratch_pairs_, sink);

  for (const StreamItem& x : cur_) {
    scratch_pairs_.clear();
    index->Query(x, &scratch_pairs_);
    EmitWithDecay(scratch_pairs_, sink);
  }

  // Fold the per-window index statistics into the aggregate; the index —
  // and all its posting lists — is then dropped wholesale. A batch index
  // only ever grows, so its entry count at close time is its peak; the
  // aggregate keeps the max across windows.
  RunStats idx_stats = index->stats();
  idx_stats.vectors_processed = 0;  // already counted in Push
  idx_stats.pairs_emitted = 0;      // counted post-decay in EmitWithDecay
  idx_stats.peak_index_entries = idx_stats.entries_indexed;
  stats_ += idx_stats;

  prev_ = std::move(cur_);
  cur_.clear();
}

void MiniBatchJoin::EmitWithDecay(const std::vector<ResultPair>& raw,
                                  ResultSink* sink) {
  for (const ResultPair& r : raw) {
    const double sim = r.dot * DecayFactor(params_.lambda, r.ta, r.tb);
    if (sim >= params_.theta) {
      ResultPair p = r;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  }
}

}  // namespace sssj
