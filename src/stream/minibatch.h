// MB-IDX — the MiniBatch framework (Algorithm 1, refined per §6.1).
//
// The stream is chopped into consecutive windows of length τ. The index
// over window W_{k−1} is built lazily, at the *end* of window W_k, so that
// the AP-family prefix-filter invariant can be established with a max
// vector covering both the indexed data (W_{k−1}) and all its future
// queries (W_k) — this is the two-window refinement of §6.1. At each
// window boundary:
//   1. a fresh index is constructed over W_{k−1}, reporting every
//      intra-window pair of W_{k−1} (IndConstr),
//   2. every vector of W_k queries that index, reporting cross-window
//      pairs (CandGen + CandVer),
//   3. every reported pair passes the ApplyDecay filter
//      (dot · e^{−λΔt} ≥ θ),
//   4. windows shift; the old index is dropped wholesale — this is MB's
//      big advantage on dense data: no incremental list surgery.
//
// Completeness: any pair within the horizon τ lies either inside one
// window or spans two adjacent ones; both cases are covered. As the paper
// notes, MB reports pairs with a delay of up to 2τ and wastes work on
// candidate pairs with Δt ∈ (τ, 2τ] that ApplyDecay then rejects.
//
// Special case λ = 0 (τ = ∞): the window never closes and Flush() performs
// one classic batch apss over the whole stream.
//
// Parallel window close (num_threads > 1): once the index over W_{k−1} is
// built it is immutable, so the query phase — each vector of W_k probing
// it independently — is embarrassingly parallel. The window's queries are
// partitioned into contiguous chunks, each chunk runs on the shared
// fork/join pool with its own BatchQueryScratch and pair buffer, and the
// buffers are emitted in arrival order afterwards. Because a query's
// entire computation (candidate admission order, floating-point
// accumulation, pruning) depends only on the query vector and the
// immutable index, the emitted pair sequence is bit-identical to the
// sequential engine for ANY thread count.
#ifndef SSSJ_STREAM_MINIBATCH_H_
#define SSSJ_STREAM_MINIBATCH_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/join_core.h"
#include "core/result.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/batch_index.h"
#include "util/thread_pool.h"

namespace sssj {

class MiniBatchJoin final : public JoinCore {
 public:
  using IndexFactory = std::function<std::unique_ptr<BatchIndex>()>;

  // `window_factor` (≥ 1) sets the window length to window_factor·τ. The
  // paper fixes it at 1; larger windows are still complete (any window
  // ≥ τ makes in-horizon pairs intra- or adjacent-window) and trade fewer
  // index rebuilds against larger per-window indexes and more decay-
  // rejected candidates (MB tests pairs up to 2·window apart). Values < 1
  // would lose pairs and are clamped to 1.
  //
  // `num_threads` (≥ 1, including the calling thread) parallelizes the
  // query phase of every window close; 1 keeps the fully sequential path.
  // Output is bit-identical for any value.
  MiniBatchJoin(const DecayParams& params, IndexFactory factory,
                double window_factor = 1.0, size_t num_threads = 1);

  // Same, but running window closes on an injected pool shared with other
  // joins (JoinService creates one pool per service, not one per engine).
  // A null pool keeps the sequential path. Output is bit-identical to the
  // own-pool constructor for any pool size: chunk buffers are drained in
  // arrival order either way.
  MiniBatchJoin(const DecayParams& params, IndexFactory factory,
                double window_factor, std::shared_ptr<ThreadPool> pool);

  Framework framework() const override { return Framework::kMiniBatch; }

  // Feeds one arrival; emits any pairs that became reportable (i.e. when
  // `x` closes one or more windows). Returns false on a time-order
  // violation (the item is rejected, state unchanged).
  bool Push(const StreamItem& x, ResultSink* sink) override;

  // Closes all pending windows and reports the remaining pairs. The join
  // can be reused afterwards: windows, the stream clock AND the stats
  // counters start fresh on the next Push, so a reused join never
  // double-counts (stats() keeps the finished run's totals until then).
  void Flush(ResultSink* sink) override;

  // Statistics over all window indexes built in the current run (i.e.
  // since construction or the first Push after a Flush).
  const RunStats& stats() const override { return stats_; }
  const DecayParams& params() const { return params_; }

  // Approximate resident bytes: the buffered windows W_{k−1} and W_k plus
  // the peak footprint of a per-window index seen this run (the index
  // itself only lives inside CloseWindow, so its high-water mark is the
  // number that matters for capacity planning).
  size_t MemoryBytes() const override;

  // Window sizes, exposed for tests.
  size_t pending_current() const { return cur_.size(); }
  size_t pending_previous() const { return prev_.size(); }
  size_t num_threads() const {
    return pool_ == nullptr ? 1 : pool_->num_threads();
  }

  // Stream-clock state, exposed so the engine can diagnose a time
  // regression precisely before delegating. `started()` is false again
  // after a Flush (the next Push begins a fresh run).
  Timestamp last_ts() const override { return last_ts_; }
  bool started() const override { return started_; }

  // Checkpoint-restore hook: re-arms the clock after a replay rebuilt the
  // windows. With items replayed the clock is already correct and this is
  // a re-assertion; for a started-but-empty snapshot (possible only in
  // adversarial inputs) the window anchor stays at its default and the
  // next Push's gap logic re-anchors it — completeness holds for any
  // window ≥ τ.
  void RestoreClock(Timestamp last_ts, bool started) override {
    last_ts_ = last_ts;
    started_ = started;
  }

  // A window boundary: the current window is empty, i.e. the last push
  // closed a window (or nothing was pushed yet).
  bool AtBoundary() const override { return cur_.empty(); }

  // The buffered windows W_{k−1} ∪ W_k — exactly the items whose pairs
  // (intra- and cross-window) have not been reported yet, in arrival
  // order.
  void CollectLiveItems(Stream* out) const override {
    out->insert(out->end(), prev_.begin(), prev_.end());
    out->insert(out->end(), cur_.begin(), cur_.end());
  }

 private:
  void CloseWindow(ResultSink* sink);
  void QueryWindowParallel(const BatchIndex& index, ResultSink* sink);
  // The ApplyDecay filter of Algorithm 1: both emission paths (sequential
  // and parallel) share it so the acceptance rule can never diverge.
  bool ApplyDecay(const ResultPair& raw, ResultPair* out) const;
  void EmitWithDecay(const std::vector<ResultPair>& raw, ResultSink* sink);

  // Per-chunk working state for the parallel window close. Reused across
  // windows so the steady state allocates nothing.
  struct QueryChunk {
    BatchQueryScratch scratch;
    std::vector<ResultPair> raw;    // one query's unfiltered pairs
    std::vector<ResultPair> ready;  // decay-filtered, in arrival order
  };

  DecayParams params_;
  IndexFactory factory_;
  double window_len_;  // window_factor · τ
  Stream prev_;  // W_{k−1}: awaiting indexing
  Stream cur_;   // W_k: accumulating
  Timestamp window_end_ = 0.0;
  Timestamp last_ts_ = 0.0;
  bool started_ = false;
  RunStats stats_;
  std::vector<ResultPair> scratch_pairs_;
  std::shared_ptr<ThreadPool> pool_;  // nullptr → sequential close
  std::vector<QueryChunk> chunks_;
  size_t peak_index_bytes_ = 0;
};

}  // namespace sssj

#endif  // SSSJ_STREAM_MINIBATCH_H_
