// STR-IDX — the Streaming framework (Algorithm 5). A thin, validating
// wrapper over a StreamIndex: each arrival is joined against the online
// index and then inserted into it; results are reported immediately (no
// reporting delay, unlike MB).
#ifndef SSSJ_STREAM_STREAMING_H_
#define SSSJ_STREAM_STREAMING_H_

#include <memory>

#include "core/result.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/stream_index.h"

namespace sssj {

class StreamingJoin {
 public:
  StreamingJoin(const DecayParams& params, std::unique_ptr<StreamIndex> index)
      : params_(params), index_(std::move(index)) {}

  // Feeds one arrival; pairs are emitted synchronously. Returns false on a
  // time-order violation (item rejected).
  bool Push(const StreamItem& x, ResultSink* sink) {
    if (started_ && x.ts < last_ts_) return false;
    started_ = true;
    last_ts_ = x.ts;
    index_->ProcessArrival(x, sink);
    return true;
  }

  // Batched ingestion: pushes every item in order, skipping time-order
  // violations, and returns the number accepted. With a sharded index the
  // per-arrival work inside ProcessArrival is parallelized; arrivals are
  // still consumed one at a time so the output order stays deterministic.
  size_t PushBatch(const Stream& batch, ResultSink* sink) {
    size_t accepted = 0;
    for (const StreamItem& item : batch) {
      if (Push(item, sink)) ++accepted;
    }
    return accepted;
  }

  // STR has no buffered state to drain; provided for API symmetry with MB.
  void Flush(ResultSink* /*sink*/) {}

  const RunStats& stats() const { return index_->stats(); }
  const DecayParams& params() const { return params_; }
  const StreamIndex& index() const { return *index_; }
  StreamIndex* mutable_index() { return index_.get(); }

  // Clock state, exposed for checkpoint/restore (engine.cc).
  Timestamp last_ts() const { return last_ts_; }
  bool started() const { return started_; }
  void RestoreClock(Timestamp last_ts, bool started) {
    last_ts_ = last_ts;
    started_ = started;
  }

 private:
  DecayParams params_;
  std::unique_ptr<StreamIndex> index_;
  Timestamp last_ts_ = 0.0;
  bool started_ = false;
};

}  // namespace sssj

#endif  // SSSJ_STREAM_STREAMING_H_
