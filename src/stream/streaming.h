// STR-IDX — the Streaming framework (Algorithm 5). A thin, validating
// wrapper over a StreamIndex: each arrival is joined against the online
// index and then inserted into it; results are reported immediately (no
// reporting delay, unlike MB).
#ifndef SSSJ_STREAM_STREAMING_H_
#define SSSJ_STREAM_STREAMING_H_

#include <deque>
#include <memory>

#include "core/join_core.h"
#include "core/result.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/stream_index.h"

namespace sssj {

class StreamingJoin final : public JoinCore {
 public:
  // `retain_live` keeps a copy of every in-horizon item (ts within τ of
  // the newest arrival) in a side buffer, which is what portable
  // checkpoints and live scheme migration serialize (CollectLiveItems).
  // Off by default: it roughly doubles STR's resident bytes, and engines
  // without migration enabled never read it. With λ = 0 the horizon is
  // infinite and the buffer retains the whole stream — the same growth
  // the index itself has in that regime.
  StreamingJoin(const DecayParams& params, std::unique_ptr<StreamIndex> index,
                bool retain_live = false)
      : params_(params), index_(std::move(index)), retain_live_(retain_live) {}

  Framework framework() const override { return Framework::kStreaming; }

  // Feeds one arrival; pairs are emitted synchronously. Returns false on a
  // time-order violation (item rejected).
  bool Push(const StreamItem& x, ResultSink* sink) override {
    if (started_ && x.ts < last_ts_) return false;
    started_ = true;
    last_ts_ = x.ts;
    index_->ProcessArrival(x, sink);
    if (retain_live_) RetainItem(x);
    return true;
  }

  // STR has no buffered state to drain; provided for API symmetry with MB.
  void Flush(ResultSink* /*sink*/) override {}

  const RunStats& stats() const override { return index_->stats(); }
  const DecayParams& params() const { return params_; }
  const StreamIndex& index() const { return *index_; }
  StreamIndex* mutable_index() { return index_.get(); }

  size_t MemoryBytes() const override {
    return index_->MemoryBytes() + live_bytes_;
  }

  // Clock state, exposed for checkpoint/restore (engine.cc).
  Timestamp last_ts() const override { return last_ts_; }
  bool started() const override { return started_; }
  void RestoreClock(Timestamp last_ts, bool started) override {
    last_ts_ = last_ts;
    started_ = started;
  }

  // STR emits eagerly, so every push boundary is a reporting boundary.
  bool AtBoundary() const override { return true; }

  void CollectLiveItems(Stream* out) const override {
    out->insert(out->end(), live_.begin(), live_.end());
  }

  StreamingJoin* AsStreaming() override { return this; }
  const StreamingJoin* AsStreaming() const override { return this; }

 private:
  void RetainItem(const StreamItem& x) {
    live_.push_back(x);
    live_bytes_ += sizeof(StreamItem) + x.vec.nnz() * sizeof(Coord);
    // Prune strictly-out-of-horizon items only: at Δt == τ a dot of 1
    // still reaches θ exactly (sim = θ qualifies), so `>` not `>=`.
    while (!live_.empty() && x.ts - live_.front().ts > params_.tau) {
      live_bytes_ -=
          sizeof(StreamItem) + live_.front().vec.nnz() * sizeof(Coord);
      live_.pop_front();
    }
  }

  DecayParams params_;
  std::unique_ptr<StreamIndex> index_;
  bool retain_live_ = false;
  std::deque<StreamItem> live_;  // in-horizon items, arrival order
  size_t live_bytes_ = 0;
  Timestamp last_ts_ = 0.0;
  bool started_ = false;
};

}  // namespace sssj

#endif  // SSSJ_STREAM_STREAMING_H_
