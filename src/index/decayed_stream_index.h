// Streaming indexes under a *generalized* decay function (core/decay.h) —
// the paper's future-work extension. Two schemes generalize soundly:
//
//   GeneralDecayInvIndex — STR-INV: exact accumulation, decay applied only
//     at verification. Works for any monotone decay.
//   GeneralDecayL2Index  — STR-L2: all three ℓ2 rules (remscore admission,
//     early l2bound, CV ps1) hold for any f ≤ 1, because their proofs only
//     use Cauchy–Schwarz plus f(Δt) ≤ 1 (Appendix A).
//
// STR-L2AP does NOT generalize: its m̂λ decayed-max is exact only under a
// shared exponential rate (see core/decay.h), which is an argument the
// paper's own conclusion anticipates — L2 is the streaming-friendly index.
//
// A DecayFunction with Kind::kSlidingWindow turns GeneralDecayL2Index into
// a classic sliding-window similarity join with L2AP-strength content
// pruning.
#ifndef SSSJ_INDEX_DECAYED_STREAM_INDEX_H_
#define SSSJ_INDEX_DECAYED_STREAM_INDEX_H_

#include <unordered_map>
#include <vector>

#include "core/decay.h"
#include "index/candidate_map.h"
#include "index/posting_list.h"
#include "index/residual_store.h"
#include "index/stream_index.h"

namespace sssj {

// Exact sliding-horizon oracle under a generalized decay; also the test
// oracle for the two indexes below.
void BruteForceDecayJoin(const Stream& stream, double theta,
                         const DecayFunction& decay, ResultSink* sink);

class GeneralDecayInvIndex : public StreamIndex {
 public:
  GeneralDecayInvIndex(double theta, const DecayFunction& decay,
                       const TieredStorageOptions& tiered = {})
      : theta_(theta),
        decay_(decay),
        tau_(decay.Horizon(theta)),
        tiered_(tiered) {}

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return "INV(gen)"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override {
    return PostingMapMemoryBytes(lists_);
  }
  double horizon() const { return tau_; }

 private:
  double theta_;
  DecayFunction decay_;
  double tau_;
  TieredStorageOptions tiered_;
  std::unordered_map<DimId, PostingList> lists_;
  CandidateMap cands_;
  FrozenColumns posting_;  // frozen-block decode scratch
};

class GeneralDecayL2Index : public StreamIndex {
 public:
  GeneralDecayL2Index(double theta, const DecayFunction& decay,
                      const TieredStorageOptions& tiered = {})
      : theta_(theta),
        decay_(decay),
        tau_(decay.Horizon(theta)),
        tiered_(tiered) {}

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return "L2(gen)"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override {
    return residuals_.ApproxBytes() + PostingMapMemoryBytes(lists_);
  }
  double horizon() const { return tau_; }

 private:
  double theta_;
  DecayFunction decay_;
  double tau_;
  TieredStorageOptions tiered_;
  std::unordered_map<DimId, PostingList> lists_;
  ResidualStore residuals_;
  CandidateMap cands_;
  std::vector<double> prefix_norms_;
  FrozenColumns posting_;  // frozen-block decode scratch
};

}  // namespace sssj

#endif  // SSSJ_INDEX_DECAYED_STREAM_INDEX_H_
