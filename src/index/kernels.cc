#include "index/kernels.h"

#include <cstddef>

#if defined(__x86_64__)
#include <immintrin.h>
#define SSSJ_KERNELS_X86 1
#endif

namespace sssj {

#if defined(SSSJ_KERNELS_X86)
// The SparseDot gather walks Coord::dim at a fixed 16-byte stride
// (true on x86-64, where double is 8-byte aligned; i386 would pack
// Coord to 12 bytes and takes the scalar path instead).
static_assert(sizeof(Coord) == 16 && offsetof(Coord, dim) == 0 &&
                  offsetof(Coord, value) == 8,
              "SparseDot kernels assume the {u32 dim, pad, f64 value} "
              "Coord layout");
#endif
namespace kernels {

void DecayColumn(const Timestamp* ts, size_t n, Timestamp now, double lambda,
                 double* out) {
  simd::DecayBlock(ts, n, now, lambda, out);
}

void ProductColumn(const double* col, size_t n, double q, double* out) {
  simd::ScaleBlock(col, n, q, out);
}

namespace {

inline double SparseDotScalar(const Coord* a, size_t na, const Coord* b,
                              size_t nb) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    if (a[i].dim < b[j].dim) {
      ++i;
    } else if (b[j].dim < a[i].dim) {
      ++j;
    } else {
      s += a[i].value * b[j].value;
      ++i;
      ++j;
    }
  }
  return s;
}

#if defined(SSSJ_KERNELS_X86)

// Length of the prefix of 8 sorted dims (read at the 16-byte Coord
// stride) that are strictly below `limit`.
__attribute__((target("avx2"))) inline unsigned RunBelowAvx2(
    const DimId* dims, DimId limit) {
  // Coord stride in 32-bit elements (gather scale 4).
  const __m256i idx = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
  const __m256i sign = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i d = _mm256_xor_si256(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(dims), idx, 4),
      sign);
  const __m256i lim =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(limit)), sign);
  const __m256i lt = _mm256_cmpgt_epi32(lim, d);  // unsigned dims < limit
  const unsigned mask =
      static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(lt)));
  // Sorted input: the < prefix is contiguous from lane 0.
  return mask == 0xFFu ? 8u : static_cast<unsigned>(__builtin_ctz(~mask));
}

// Merge join with 8-wide cursor skips: when the sides disagree and a
// one-load probe shows at least a 4-run to jump (so dense interleaved
// merges stay at scalar speed), gather the next 8 dims of the trailing
// side (stride 16 B — Coord is {u32 dim, pad, f64 value}) and advance
// past the whole run that is still below the leading dim. Matches are
// found in the same ascending order as the scalar merge and accumulated
// one by one, so the sum — and the result bits — are identical.
__attribute__((target("avx2"))) double SparseDotAvx2(const Coord* a,
                                                     size_t na,
                                                     const Coord* b,
                                                     size_t nb) {
  double s = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < na && j < nb) {
    const DimId ad = a[i].dim;
    const DimId bd = b[j].dim;
    if (ad == bd) {
      s += a[i].value * b[j].value;
      ++i;
      ++j;
    } else if (ad < bd) {
      if (na - i >= 8 && a[i + 3].dim < bd) {
        i += RunBelowAvx2(&a[i].dim, bd);
      } else {
        ++i;
      }
    } else {
      if (nb - j >= 8 && b[j + 3].dim < ad) {
        j += RunBelowAvx2(&b[j].dim, ad);
      } else {
        ++j;
      }
    }
  }
  return s;
}

bool Avx2Available() {
  return ActiveSimdLevel() == SimdLevel::kAvx2;
}

#endif  // SSSJ_KERNELS_X86

}  // namespace

double SparseDot(const SparseVector& a, const SparseVector& b,
                 bool use_simd) {
  const Coord* ac = a.coords().data();
  const Coord* bc = b.coords().data();
  const size_t na = a.nnz();
  const size_t nb = b.nnz();
#if defined(SSSJ_KERNELS_X86)
  // The gather-based skips only pay off on skewed merges (the dense side
  // runs several entries per entry of the sparse side — the typical
  // verify shape: long query vs short residual prefix). Balanced merges
  // advance ~1 at a time, where the probe is pure overhead, so they stay
  // on the scalar merge — which is bit-identical anyway.
  const size_t lo = na < nb ? na : nb;
  const size_t hi = na < nb ? nb : na;
  if (use_simd && lo > 0 && hi >= 4 * lo && hi >= 2 * kMinSimdRun &&
      Avx2Available()) {
    return SparseDotAvx2(ac, na, bc, nb);
  }
#else
  (void)use_simd;
#endif
  return SparseDotScalar(ac, na, bc, nb);
}

}  // namespace kernels
}  // namespace sssj
