#include "index/candidate_map.h"

namespace sssj {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t c = 16;
  while (c < n) c <<= 1;
  return c;
}
}  // namespace

CandidateMap::CandidateMap(size_t initial_capacity)
    : slots_(RoundUpPow2(initial_capacity)) {}

void CandidateMap::Reset() {
  ++generation_;
  touched_.clear();
  admitted_ = 0;
  if (generation_ == 0) {  // wrapped: hard-clear all stamps
    for (Slot& s : slots_) s.generation = 0;
    generation_ = 1;
  }
}

CandidateMap::Slot* CandidateMap::FindOrCreate(VectorId id) {
  if (touched_.size() * 4 >= slots_.size() * 3) Grow();
  size_t i = Mask(HashId(id));
  while (true) {
    Slot& s = slots_[i];
    if (s.generation != generation_) {
      s.id = id;
      s.score = 0.0;
      s.ts = 0.0;
      s.generation = generation_;
      touched_.push_back(static_cast<uint32_t>(i));
      return &s;
    }
    if (s.id == id) return &s;
    i = (i + 1) & (slots_.size() - 1);
  }
}

void CandidateMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  std::vector<uint32_t> old_touched = std::move(touched_);
  slots_.assign(old.size() * 2, Slot{});
  touched_.clear();
  touched_.reserve(old_touched.size());
  for (uint32_t idx : old_touched) {
    const Slot& s = old[idx];
    if (s.generation != generation_) continue;
    size_t i = Mask(HashId(s.id));
    while (slots_[i].generation == generation_) {
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = s;
    touched_.push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace sssj
