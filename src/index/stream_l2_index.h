// STR-L2 (§5.4) — the paper's main contribution. Uses only the ℓ2 bounds
// (b2 for index construction; rs2, l2bound for candidate generation; ps1
// for verification), all of which depend exclusively on the query and
// candidate vectors — never on stream-wide statistics. Consequently:
//   * no max vector m(t) has to be maintained, so no re-indexing ever
//     happens,
//   * posting lists stay time-sorted, enabling the backward-scan +
//     O(1) truncation optimization of §6.2,
//   * the decay factor tightens every bound (Appendix A).
#ifndef SSSJ_INDEX_STREAM_L2_INDEX_H_
#define SSSJ_INDEX_STREAM_L2_INDEX_H_

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/candidate_map.h"
#include "index/l2_phases.h"
#include "index/posting_list.h"
#include "index/residual_store.h"
#include "index/stream_index.h"

namespace sssj {

// The per-arrival processing is decomposed into generation / verification /
// construction phase templates shared with the parallel ShardedStreamIndex
// — see index/l2_phases.h (which also defines the L2IndexOptions ablation
// switches).

class StreamL2Index : public StreamIndex {
 public:
  // `use_simd` selects the vectorized scoring kernels (index/kernels.h)
  // for the generate-phase decay column and the verification dots; false
  // (default) keeps the bit-exact scalar reference path. `tiered`
  // enables the frozen-block cold tier under every posting list; with
  // the exact value tier (default) it never changes output.
  explicit StreamL2Index(const DecayParams& params,
                         const L2IndexOptions& options = {},
                         bool use_simd = false,
                         const TieredStorageOptions& tiered = {})
      : params_(params), options_(options), tiered_(tiered) {
    kernel_.use_simd = use_simd;
  }

  // Movable so a checkpoint can be deserialized into a scratch index and
  // swapped into the live engine only once the whole file validated
  // (engine.cc LoadCheckpoint). The base subobject (stats_, live-entry
  // counter) is transferred by copy, which is exactly what a swap wants.
  StreamL2Index(StreamL2Index&&) = default;
  StreamL2Index& operator=(StreamL2Index&&) = default;

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return "L2"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override {
    return residuals_.ApproxBytes() + PostingMapMemoryBytes(lists_);
  }

  size_t residual_count() const { return residuals_.size(); }

  // Checkpointing: serializes the complete live state (posting lists,
  // residual store, live-entry counter) so a streaming job can be resumed
  // after a restart. Counters in stats() are per-process and are NOT part
  // of the checkpoint.
  //
  // Format v2 ("SSSJCKP2"): a magic + version + scheme-tag header, the
  // engine parameters (θ, λ), and posting lists stored column-major
  // (all ids, then all values, then all prefix norms, then all
  // timestamps per list) mirroring the in-memory SoA layout. Deserialize
  // replaces the index state; it fails (returning false, state cleared,
  // a human-readable reason in *error) on bad magic, stale version,
  // scheme or parameter mismatch, or truncation — a checkpoint is only
  // valid for the same scheme and (θ, λ).
  bool Serialize(std::ostream& os) const;
  bool Deserialize(std::istream& is, std::string* error = nullptr);

 private:
  DecayParams params_;
  L2IndexOptions options_;
  TieredStorageOptions tiered_;
  L2KernelState kernel_;  // kernel selection + decay + thaw scratch
  std::unordered_map<DimId, PostingList> lists_;
  ResidualStore residuals_;
  CandidateMap cands_;
  std::vector<double> prefix_norms_;  // scratch
};

}  // namespace sssj

#endif  // SSSJ_INDEX_STREAM_L2_INDEX_H_
