// STR-L2AP (§5.3): the streaming adaptation of the L2AP index.
//
// Unlike L2, the AP-style b1/rs1 bounds depend on stream-wide statistics:
//   * m  — per-dimension maximum over all vectors seen so far; used by the
//          b1 index-construction bound. Maintained online, *without* decay
//          (§6.2: decaying m would change it constantly and force constant
//          re-indexing).
//   * m̂λ — time-decayed per-dimension maximum over *indexed* values; used
//          by the rs1 candidate-generation bound (dot(x, m̂λ)).
//
// When a new arrival raises m in some dimension, the prefix-filtering
// invariant ("any two similar vectors share an *indexed* dimension") may
// break for vectors whose un-indexed residual contains that dimension:
// their indexing boundary, recomputed under the larger m, can move earlier.
// Restoring the invariant is *re-indexing* — moving the affected residual
// coordinates into the posting lists. Re-indexed postings carry their
// original (old) timestamps, so posting lists are no longer time-sorted:
// candidate generation must scan forward and compact expired entries
// instead of the O(1) backward truncation available to INV/L2. These two
// costs — re-indexing work and full-list scans — are exactly the overheads
// the paper measures in Figures 5 and 6.
//
// Ordering note (DESIGN.md deviation 2): the m-update and re-indexing for
// an arrival x run *before* x's candidate generation. The paper's
// Algorithm 6 writes the coordinate loop (where m updates are discovered)
// after CandGen; that order can miss pairs whose shared dimensions are all
// in a residual that only becomes indexable because of x itself.
#ifndef SSSJ_INDEX_STREAM_L2AP_INDEX_H_
#define SSSJ_INDEX_STREAM_L2AP_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/candidate_map.h"
#include "index/l2_phases.h"
#include "index/max_vector.h"
#include "index/posting_list.h"
#include "index/residual_store.h"
#include "index/stream_index.h"

namespace sssj {

class StreamL2apIndex : public StreamIndex {
 public:
  // `ic_theta_slack` ∈ [0, 1) implements the paper's practical workaround
  // for re-indexing churn ("use a more lax bound to decrease the frequency
  // of re-indexing", §7.1 Q2): index construction uses the lowered
  // threshold θ·(1−slack), so vectors are indexed slightly earlier
  // (shorter residual prefixes). Indexing *more* coordinates is always
  // safe; the benefit is that max-vector growth rarely crosses the relaxed
  // bound, so boundaries rarely move. Candidate generation and
  // verification still prune at the true θ.
  // `use_l2_bounds = false` drops the green (ℓ2) lines and yields STR-AP —
  // the variant the paper's evaluation omits as "much slower than L2AP";
  // we keep it constructible so the ablation bench can reproduce that
  // preliminary finding.
  // `use_simd` selects the vectorized scoring kernels for the forward
  // scan's decay column and the verification dots (index/kernels.h).
  // `tiered` enables the frozen-block cold tier; L2AP's forward
  // compaction re-freezes straddling blocks instead of assuming time
  // order.
  explicit StreamL2apIndex(const DecayParams& params,
                           double ic_theta_slack = 0.0,
                           bool use_l2_bounds = true, bool use_simd = false,
                           const TieredStorageOptions& tiered = {})
      : params_(params),
        ic_theta_(params.theta * (1.0 - ic_theta_slack)),
        use_l2_bounds_(use_l2_bounds),
        tiered_(tiered),
        residuals_(/*track_prefix_dims=*/true),
        mhat_(params.lambda) {
    kernel_.use_simd = use_simd;
  }

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return use_l2_bounds_ ? "L2AP" : "AP"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override {
    return residuals_.ApproxBytes() + PostingMapMemoryBytes(lists_);
  }

  size_t residual_count() const { return residuals_.size(); }

 private:
  // Restores the prefix-filtering invariant after m grew in `updated_dims`.
  void Reindex(const std::vector<DimId>& updated_dims, Timestamp cutoff);
  // Re-scans one residual under the current m; moves newly indexable
  // coordinates into the posting lists. Returns true if anything moved.
  bool ReindexOne(VectorId id, ResidualRecord* rec);

  DecayParams params_;
  double ic_theta_;  // index-construction threshold (≤ params_.theta)
  bool use_l2_bounds_;
  TieredStorageOptions tiered_;
  L2KernelState kernel_;  // kernel selection + decay + thaw scratch
  std::unordered_map<DimId, PostingList> lists_;
  ResidualStore residuals_;
  MaxVector m_;
  DecayedMaxVector mhat_;
  CandidateMap cands_;
  std::vector<double> prefix_norms_;   // scratch
  std::vector<DimId> updated_dims_;    // scratch
  std::vector<VectorId> reindex_ids_;  // scratch
};

}  // namespace sssj

#endif  // SSSJ_INDEX_STREAM_L2AP_INDEX_H_
