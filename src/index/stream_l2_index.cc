#include "index/stream_l2_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

namespace sssj {

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'S', 'S', 'J', 'C', 'K', 'P', '1'};

template <typename T>
void PutRaw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.good();
}

}  // namespace

void StreamL2Index::ProcessArrival(const StreamItem& x, ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  L2ComputePrefixNorms(v, &prefix_norms_);
  L2PhaseStats phase_stats;

  // ---- Candidate generation (Algorithm 7, green lines) ----
  cands_.Reset();
  L2GenerateCandidates(
      x, params_, options_, prefix_norms_, cutoff,
      [this](DimId dim) -> PostingList* {
        auto it = lists_.find(dim);
        return it == lists_.end() ? nullptr : &it->second;
      },
      [](VectorId) { return true; },
      [this](PostingList& list, size_t n) {
        NotePruned(list.TruncateFront(n));
      },
      &cands_, &phase_stats);

  // ---- Candidate verification (Algorithm 8, green lines) ----
  L2VerifyCandidates(x, params_, options_, cands_, residuals_, &phase_stats,
                     [sink](const ResultPair& p) { sink->Emit(p); });

  // ---- Index construction (Algorithm 6, green lines) ----
  const L2IndexSplit split = L2ComputeIndexSplit(v, params_.theta);
  const size_t n = v.nnz();
  if (split.first_indexed < n) {
    residuals_.Insert(x.id, L2MakeResidualRecord(x, split));
    for (size_t i = split.first_indexed; i < n; ++i) {
      const Coord& c = v.coord(i);
      lists_[c.dim].Append(
          PostingEntry{x.id, c.value, prefix_norms_[i], x.ts});
    }
    NoteIndexed(n - split.first_indexed);
  }
  phase_stats.MergeInto(&stats_);
}

void StreamL2Index::Clear() {
  lists_.clear();
  residuals_.Clear();
  live_entries_ = 0;
}

bool StreamL2Index::Serialize(std::ostream& os) const {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutRaw(os, params_.theta);
  PutRaw(os, params_.lambda);
  PutRaw(os, static_cast<uint64_t>(live_entries_));

  PutRaw(os, static_cast<uint64_t>(lists_.size()));
  for (const auto& [dim, list] : lists_) {
    PutRaw(os, dim);
    PutRaw(os, static_cast<uint64_t>(list.size()));
    for (size_t i = 0; i < list.size(); ++i) {
      const PostingEntry& e = list[i];
      PutRaw(os, e.id);
      PutRaw(os, e.value);
      PutRaw(os, e.prefix_norm);
      PutRaw(os, e.ts);
    }
  }

  PutRaw(os, static_cast<uint64_t>(residuals_.size()));
  // LinkedHashMap iterates in insertion (= time) order; preserving it is
  // required for the O(1) expiry on restore.
  residuals_.ForEachInOrder([&os](VectorId id, const ResidualRecord& rec) {
    PutRaw(os, id);
    PutRaw(os, rec.ts);
    PutRaw(os, rec.q);
    PutRaw(os, rec.vm);
    PutRaw(os, rec.sum);
    PutRaw(os, rec.nnz);
    PutRaw(os, static_cast<uint64_t>(rec.prefix.nnz()));
    for (const Coord& c : rec.prefix) {
      PutRaw(os, c.dim);
      PutRaw(os, c.value);
    }
  });
  return os.good();
}

bool StreamL2Index::Deserialize(std::istream& is) {
  Clear();
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is.good() ||
      std::memcmp(magic, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return false;
  }
  double theta, lambda;
  uint64_t live;
  if (!GetRaw(is, &theta) || !GetRaw(is, &lambda) || !GetRaw(is, &live)) {
    return false;
  }
  if (theta != params_.theta || lambda != params_.lambda) return false;

  uint64_t num_lists;
  if (!GetRaw(is, &num_lists)) return false;
  for (uint64_t l = 0; l < num_lists; ++l) {
    DimId dim;
    uint64_t len;
    if (!GetRaw(is, &dim) || !GetRaw(is, &len)) {
      Clear();
      return false;
    }
    PostingList& list = lists_[dim];
    for (uint64_t i = 0; i < len; ++i) {
      PostingEntry e;
      if (!GetRaw(is, &e.id) || !GetRaw(is, &e.value) ||
          !GetRaw(is, &e.prefix_norm) || !GetRaw(is, &e.ts)) {
        Clear();
        return false;
      }
      list.Append(e);
    }
  }

  uint64_t num_residuals;
  if (!GetRaw(is, &num_residuals)) {
    Clear();
    return false;
  }
  for (uint64_t r = 0; r < num_residuals; ++r) {
    VectorId id;
    ResidualRecord rec;
    uint64_t prefix_len;
    if (!GetRaw(is, &id) || !GetRaw(is, &rec.ts) || !GetRaw(is, &rec.q) ||
        !GetRaw(is, &rec.vm) || !GetRaw(is, &rec.sum) ||
        !GetRaw(is, &rec.nnz) || !GetRaw(is, &prefix_len)) {
      Clear();
      return false;
    }
    std::vector<Coord> coords;
    coords.reserve(static_cast<size_t>(std::min<uint64_t>(prefix_len, 1u << 20)));
    for (uint64_t k = 0; k < prefix_len; ++k) {
      Coord c;
      if (!GetRaw(is, &c.dim) || !GetRaw(is, &c.value)) {
        Clear();
        return false;
      }
      coords.push_back(c);
    }
    rec.prefix = SparseVector::FromCoords(std::move(coords));
    residuals_.Insert(id, std::move(rec));
  }
  live_entries_ = static_cast<size_t>(live);
  return true;
}

}  // namespace sssj
