#include "index/stream_l2_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

namespace sssj {

namespace {

// Checkpoint format v2: columnar posting records behind a magic + version
// + scheme-tag header. v1 ("SSSJCKP1") stored row-major AoS postings and
// is deliberately not readable — the stored layout changed.
constexpr char kCheckpointMagic[8] = {'S', 'S', 'S', 'J', 'C', 'K', 'P', '2'};
constexpr uint32_t kCheckpointVersion = 2;
// On-disk tag for the index scheme that wrote the checkpoint (decoupled
// from the engine's IndexScheme enum, whose numeric values are not a
// serialization contract).
constexpr uint8_t kSchemeTagL2 = 2;

template <typename T>
void PutRaw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.good();
}

// Reads `n` elements of a stored column, growing the buffer in bounded
// chunks so a corrupt length field cannot trigger a huge upfront
// allocation — a truncated stream fails after at most one chunk.
template <typename T>
bool GetColumn(std::istream& is, size_t n, std::vector<T>* out) {
  constexpr size_t kChunk = size_t{1} << 16;
  out->clear();
  while (out->size() < n) {
    const size_t take = std::min(kChunk, n - out->size());
    const size_t old = out->size();
    out->resize(old + take);
    is.read(reinterpret_cast<char*>(out->data() + old),
            static_cast<std::streamsize>(take * sizeof(T)));
    if (!is.good()) return false;
  }
  return true;
}

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

void StreamL2Index::ProcessArrival(const StreamItem& x, ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  L2ComputePrefixNorms(v, &prefix_norms_);
  L2PhaseStats phase_stats;

  // ---- Candidate generation (Algorithm 7, green lines) ----
  cands_.Reset();
  L2GenerateCandidates(
      x, params_, options_, prefix_norms_, cutoff,
      [this](DimId dim) -> PostingList* {
        auto it = lists_.find(dim);
        if (it == lists_.end()) return nullptr;
        it->second.NoteScanned(stats_.vectors_processed);  // scan-rate classifier
        return &it->second;
      },
      [](VectorId) { return true; },
      [this](PostingList& list, size_t n) {
        NotePruned(list.TruncateFront(n));
      },
      &kernel_, &cands_, &phase_stats);

  // ---- Candidate verification (Algorithm 8, green lines) ----
  L2VerifyCandidates(x, params_, options_, cands_, residuals_, &kernel_,
                     &phase_stats,
                     [sink](const ResultPair& p) { sink->Emit(p); });

  // ---- Index construction (Algorithm 6, green lines) ----
  const L2IndexSplit split = L2ComputeIndexSplit(v, params_.theta);
  const size_t n = v.nnz();
  if (split.first_indexed < n) {
    residuals_.Insert(x.id, L2MakeResidualRecord(x, split));
    for (size_t i = split.first_indexed; i < n; ++i) {
      const Coord& c = v.coord(i);
      PostingList& list = lists_[c.dim];
      list.Append(x.id, c.value, prefix_norms_[i], x.ts);
      list.MaybeFreeze(tiered_, stats_.vectors_processed);
    }
    NoteIndexed(n - split.first_indexed);
  }
  phase_stats.MergeInto(&stats_);
}

void StreamL2Index::Clear() {
  lists_.clear();
  residuals_.Clear();
  live_entries_ = 0;
}

bool StreamL2Index::Serialize(std::ostream& os) const {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutRaw(os, kCheckpointVersion);
  PutRaw(os, kSchemeTagL2);
  PutRaw(os, params_.theta);
  PutRaw(os, params_.lambda);
  PutRaw(os, static_cast<uint64_t>(live_entries_));

  PutRaw(os, static_cast<uint64_t>(lists_.size()));
  // Column staging: frozen blocks must be decompressed before writing, so
  // the columns are materialized per list and written whole. The on-disk
  // record stays exact fp64 regardless of the in-memory value tier (a
  // quantized list serializes its already-quantized values), keeping the
  // SSSJCKP2 format unchanged.
  FrozenColumns scratch;
  std::vector<VectorId> ids;
  std::vector<double> values;
  std::vector<double> prefix_norms;
  std::vector<Timestamp> tss;
  for (const auto& [dim, list] : lists_) {
    PutRaw(os, dim);
    const size_t len = list.size();
    PutRaw(os, static_cast<uint64_t>(len));
    ids.clear();
    values.clear();
    prefix_norms.clear();
    tss.clear();
    list.ForSpansOldestFirst(0, len, &scratch, [&](const PostingSpan& sp) {
      ids.insert(ids.end(), sp.id, sp.id + sp.len);
      values.insert(values.end(), sp.value, sp.value + sp.len);
      prefix_norms.insert(prefix_norms.end(), sp.prefix_norm,
                          sp.prefix_norm + sp.len);
      tss.insert(tss.end(), sp.ts, sp.ts + sp.len);
    });
    os.write(reinterpret_cast<const char*>(ids.data()),
             static_cast<std::streamsize>(len * sizeof(VectorId)));
    os.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(len * sizeof(double)));
    os.write(reinterpret_cast<const char*>(prefix_norms.data()),
             static_cast<std::streamsize>(len * sizeof(double)));
    os.write(reinterpret_cast<const char*>(tss.data()),
             static_cast<std::streamsize>(len * sizeof(Timestamp)));
  }

  PutRaw(os, static_cast<uint64_t>(residuals_.size()));
  // LinkedHashMap iterates in insertion (= time) order; preserving it is
  // required for the O(1) expiry on restore.
  residuals_.ForEachInOrder([&os](VectorId id, const ResidualRecord& rec) {
    PutRaw(os, id);
    PutRaw(os, rec.ts);
    PutRaw(os, rec.q);
    PutRaw(os, rec.vm);
    PutRaw(os, rec.sum);
    PutRaw(os, rec.nnz);
    PutRaw(os, static_cast<uint64_t>(rec.prefix.nnz()));
    for (const Coord& c : rec.prefix) {
      PutRaw(os, c.dim);
      PutRaw(os, c.value);
    }
  });
  return os.good();
}

bool StreamL2Index::Deserialize(std::istream& is, std::string* error) {
  Clear();
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is.good()) {
    SetError(error, "truncated checkpoint (missing header)");
    return false;
  }
  if (std::memcmp(magic, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    if (std::memcmp(magic, kCheckpointMagic, 7) == 0) {
      SetError(error, std::string("unsupported checkpoint format '") +
                          std::string(magic, 8) + "' (expected 'SSSJCKP2'; "
                          "stale checkpoint from an older build?)");
    } else {
      SetError(error, "not a sssj checkpoint (bad magic)");
    }
    return false;
  }
  uint32_t version;
  uint8_t scheme;
  if (!GetRaw(is, &version) || !GetRaw(is, &scheme)) {
    SetError(error, "truncated checkpoint (missing header)");
    return false;
  }
  if (version != kCheckpointVersion) {
    SetError(error, "unsupported checkpoint version " +
                        std::to_string(version) + " (expected " +
                        std::to_string(kCheckpointVersion) + ")");
    return false;
  }
  if (scheme != kSchemeTagL2) {
    SetError(error, "checkpoint was written by a different index scheme "
                    "(tag " + std::to_string(scheme) + ", expected L2)");
    return false;
  }
  double theta, lambda;
  uint64_t live;
  if (!GetRaw(is, &theta) || !GetRaw(is, &lambda) || !GetRaw(is, &live)) {
    SetError(error, "truncated checkpoint (missing parameters)");
    return false;
  }
  if (theta != params_.theta || lambda != params_.lambda) {
    SetError(error, "checkpoint parameter mismatch: saved theta=" +
                        std::to_string(theta) + " lambda=" +
                        std::to_string(lambda) + ", engine has theta=" +
                        std::to_string(params_.theta) + " lambda=" +
                        std::to_string(params_.lambda));
    return false;
  }

  uint64_t num_lists;
  if (!GetRaw(is, &num_lists)) {
    SetError(error, "truncated checkpoint (missing posting lists)");
    return false;
  }
  std::vector<VectorId> ids;
  std::vector<double> values;
  std::vector<double> prefix_norms;
  std::vector<Timestamp> tss;
  for (uint64_t l = 0; l < num_lists; ++l) {
    DimId dim;
    uint64_t len;
    if (!GetRaw(is, &dim) || !GetRaw(is, &len)) {
      Clear();
      SetError(error, "truncated checkpoint (posting list header)");
      return false;
    }
    const size_t n = static_cast<size_t>(len);
    if (!GetColumn(is, n, &ids) || !GetColumn(is, n, &values) ||
        !GetColumn(is, n, &prefix_norms) || !GetColumn(is, n, &tss)) {
      Clear();
      SetError(error, "truncated checkpoint (posting columns)");
      return false;
    }
    PostingList& list = lists_[dim];
    for (size_t i = 0; i < n; ++i) {
      list.Append(ids[i], values[i], prefix_norms[i], tss[i]);
      list.MaybeFreeze(tiered_);
    }
  }

  uint64_t num_residuals;
  if (!GetRaw(is, &num_residuals)) {
    Clear();
    SetError(error, "truncated checkpoint (missing residuals)");
    return false;
  }
  for (uint64_t r = 0; r < num_residuals; ++r) {
    VectorId id;
    ResidualRecord rec;
    uint64_t prefix_len;
    if (!GetRaw(is, &id) || !GetRaw(is, &rec.ts) || !GetRaw(is, &rec.q) ||
        !GetRaw(is, &rec.vm) || !GetRaw(is, &rec.sum) ||
        !GetRaw(is, &rec.nnz) || !GetRaw(is, &prefix_len)) {
      Clear();
      SetError(error, "truncated checkpoint (residual record)");
      return false;
    }
    std::vector<Coord> coords;
    coords.reserve(static_cast<size_t>(std::min<uint64_t>(prefix_len, 1u << 20)));
    for (uint64_t k = 0; k < prefix_len; ++k) {
      Coord c;
      if (!GetRaw(is, &c.dim) || !GetRaw(is, &c.value)) {
        Clear();
        SetError(error, "truncated checkpoint (residual prefix)");
        return false;
      }
      coords.push_back(c);
    }
    rec.prefix = SparseVector::FromCoords(std::move(coords));
    residuals_.Insert(id, std::move(rec));
  }
  live_entries_ = static_cast<size_t>(live);
  return true;
}

}  // namespace sssj
