#include "index/stream_l2_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

namespace sssj {

namespace {

constexpr char kCheckpointMagic[8] = {'S', 'S', 'S', 'J', 'C', 'K', 'P', '1'};

template <typename T>
void PutRaw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool GetRaw(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(T));
  return is.good();
}

}  // namespace

void StreamL2Index::ProcessArrival(const StreamItem& x, ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  // ---- Candidate generation (Algorithm 7, green lines) ----
  cands_.Reset();
  const size_t n = v.nnz();
  prefix_norms_.assign(n, 0.0);
  {
    double sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      prefix_norms_[i] = std::sqrt(sq);
      sq += v.coord(i).value * v.coord(i).value;
    }
  }

  double rst = v.norm() * v.norm();
  for (size_t i = n; i-- > 0;) {  // reverse coordinate order
    const Coord& c = v.coord(i);
    const double rs2 = std::sqrt(std::max(rst, 0.0));
    auto it = lists_.find(c.dim);
    if (it != lists_.end()) {
      PostingList& list = it->second;
      size_t idx = list.size();
      while (idx-- > 0) {  // newest → oldest
        const PostingEntry& e = list[idx];
        if (e.ts < cutoff) {
          NotePruned(list.TruncateFront(idx + 1));
          break;
        }
        ++stats_.entries_traversed;
        const double decay = std::exp(-params_.lambda * (x.ts - e.ts));
        CandidateMap::Slot* slot = cands_.FindOrCreate(e.id);
        if (slot->score < 0.0) continue;  // l2-pruned: final
        if (slot->score == 0.0) {
          // remscore = rs2 · e^{−λΔt} (line 7, AP part disabled).
          if (options_.use_remscore_bound &&
              !BoundAtLeast(rs2 * decay, params_.theta)) {
            continue;
          }
          slot->ts = e.ts;
          cands_.NoteAdmitted();
          ++stats_.candidates_generated;
        }
        slot->score += c.value * e.value;
        if (options_.use_l2bound) {
          const double l2bound =
              slot->score + prefix_norms_[i] * e.prefix_norm * decay;
          if (!BoundAtLeast(l2bound, params_.theta)) {
            slot->score = CandidateMap::kPruned;
            ++stats_.l2_prunes;
          }
        }
      }
    }
    rst -= c.value * c.value;
  }

  // ---- Candidate verification (Algorithm 8, green lines) ----
  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    const ResidualRecord* rec = residuals_.Find(id);
    if (rec == nullptr) return;  // defensive: record outlives its postings
    const double decay = std::exp(-params_.lambda * (x.ts - ts));
    if (options_.use_ps1_bound) {
      const double ps1 = (score + rec->q) * decay;
      if (!BoundAtLeast(ps1, params_.theta)) return;
    }
    ++stats_.full_dots;
    const double s = score + v.Dot(rec->prefix);
    const double sim = s * decay;
    if (sim >= params_.theta) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = s;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  });

  // ---- Index construction (Algorithm 6, green lines) ----
  double bt = 0.0;
  bool first_indexed = true;
  size_t appended = 0;
  for (size_t i = 0; i < n; ++i) {
    const Coord& c = v.coord(i);
    const double pscore = std::sqrt(bt);  // b2 before this coordinate
    bt += c.value * c.value;
    const double b2 = std::sqrt(bt);
    if (BoundAtLeast(b2, params_.theta)) {
      if (first_indexed) {
        ResidualRecord rec;
        rec.prefix = v.Prefix(i);
        rec.q = pscore;
        rec.ts = x.ts;
        rec.vm = v.max_value();
        rec.sum = v.sum();
        rec.nnz = static_cast<uint32_t>(n);
        residuals_.Insert(x.id, std::move(rec));
        first_indexed = false;
      }
      lists_[c.dim].Append(
          PostingEntry{x.id, c.value, prefix_norms_[i], x.ts});
      ++appended;
    }
  }
  NoteIndexed(appended);
}

void StreamL2Index::Clear() {
  lists_.clear();
  residuals_.Clear();
  live_entries_ = 0;
}

bool StreamL2Index::Serialize(std::ostream& os) const {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutRaw(os, params_.theta);
  PutRaw(os, params_.lambda);
  PutRaw(os, static_cast<uint64_t>(live_entries_));

  PutRaw(os, static_cast<uint64_t>(lists_.size()));
  for (const auto& [dim, list] : lists_) {
    PutRaw(os, dim);
    PutRaw(os, static_cast<uint64_t>(list.size()));
    for (size_t i = 0; i < list.size(); ++i) {
      const PostingEntry& e = list[i];
      PutRaw(os, e.id);
      PutRaw(os, e.value);
      PutRaw(os, e.prefix_norm);
      PutRaw(os, e.ts);
    }
  }

  PutRaw(os, static_cast<uint64_t>(residuals_.size()));
  // LinkedHashMap iterates in insertion (= time) order; preserving it is
  // required for the O(1) expiry on restore.
  residuals_.ForEachInOrder([&os](VectorId id, const ResidualRecord& rec) {
    PutRaw(os, id);
    PutRaw(os, rec.ts);
    PutRaw(os, rec.q);
    PutRaw(os, rec.vm);
    PutRaw(os, rec.sum);
    PutRaw(os, rec.nnz);
    PutRaw(os, static_cast<uint64_t>(rec.prefix.nnz()));
    for (const Coord& c : rec.prefix) {
      PutRaw(os, c.dim);
      PutRaw(os, c.value);
    }
  });
  return os.good();
}

bool StreamL2Index::Deserialize(std::istream& is) {
  Clear();
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is.good() ||
      std::memcmp(magic, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return false;
  }
  double theta, lambda;
  uint64_t live;
  if (!GetRaw(is, &theta) || !GetRaw(is, &lambda) || !GetRaw(is, &live)) {
    return false;
  }
  if (theta != params_.theta || lambda != params_.lambda) return false;

  uint64_t num_lists;
  if (!GetRaw(is, &num_lists)) return false;
  for (uint64_t l = 0; l < num_lists; ++l) {
    DimId dim;
    uint64_t len;
    if (!GetRaw(is, &dim) || !GetRaw(is, &len)) {
      Clear();
      return false;
    }
    PostingList& list = lists_[dim];
    for (uint64_t i = 0; i < len; ++i) {
      PostingEntry e;
      if (!GetRaw(is, &e.id) || !GetRaw(is, &e.value) ||
          !GetRaw(is, &e.prefix_norm) || !GetRaw(is, &e.ts)) {
        Clear();
        return false;
      }
      list.Append(e);
    }
  }

  uint64_t num_residuals;
  if (!GetRaw(is, &num_residuals)) {
    Clear();
    return false;
  }
  for (uint64_t r = 0; r < num_residuals; ++r) {
    VectorId id;
    ResidualRecord rec;
    uint64_t prefix_len;
    if (!GetRaw(is, &id) || !GetRaw(is, &rec.ts) || !GetRaw(is, &rec.q) ||
        !GetRaw(is, &rec.vm) || !GetRaw(is, &rec.sum) ||
        !GetRaw(is, &rec.nnz) || !GetRaw(is, &prefix_len)) {
      Clear();
      return false;
    }
    std::vector<Coord> coords;
    coords.reserve(static_cast<size_t>(std::min<uint64_t>(prefix_len, 1u << 20)));
    for (uint64_t k = 0; k < prefix_len; ++k) {
      Coord c;
      if (!GetRaw(is, &c.dim) || !GetRaw(is, &c.value)) {
        Clear();
        return false;
      }
      coords.push_back(c);
    }
    rec.prefix = SparseVector::FromCoords(std::move(coords));
    residuals_.Insert(id, std::move(rec));
  }
  live_entries_ = static_cast<size_t>(live);
  return true;
}

}  // namespace sssj
