// Abstract interface for the batch (static apss) indexing schemes of §4.
// These are the building blocks the MiniBatch framework composes; the
// three primitives map 1:1 onto the paper's:
//   IndConstr-IDX → Construct()
//   CandGen-IDX + CandVer-IDX → Query()
//
// A batch index prunes with the *raw* dot-product threshold θ; the decay
// filter (ApplyDecay in Algorithm 1) is applied by the framework on top.
// This is sound because sim_Δt(x,y) ≤ dot(x,y).
#ifndef SSSJ_INDEX_BATCH_INDEX_H_
#define SSSJ_INDEX_BATCH_INDEX_H_

#include <vector>

#include "core/result.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/candidate_map.h"
#include "index/max_vector.h"

namespace sssj {

// All mutable working state a Query() call needs: the candidate
// accumulator, the per-position prefix-norm scratch (prefix-filter schemes
// only), and the counters the query accrues. Once Construct() has
// finished, the index itself is immutable during queries, so concurrent
// Query() calls are safe as long as each thread brings its own scratch —
// this is what lets the MiniBatch framework fan a window's queries out
// across a thread pool.
struct BatchQueryScratch {
  CandidateMap cands;
  std::vector<double> prefix_norms;  // ||x'_j|| per position of the query
  // Kernel scratch for the SIMD probe path: per-list contribution
  // products (q_i · y_value) and prefix-norm products (||x'_i|| ·
  // ||y'||), both bit-identical to the per-entry multiplies they batch.
  std::vector<double> contrib;
  std::vector<double> pnprod;
  RunStats stats;
};

class BatchIndex {
 public:
  virtual ~BatchIndex() = default;

  // Builds the index over `window` (time-ordered items), appending every
  // intra-window pair with dot >= theta to `pairs` (dot == sim fields hold
  // the raw dot; the caller applies decay).
  //
  // `global_max` must dominate, coordinate-wise, every vector in `window`
  // AND every vector later passed to Query() — this is the §6.1 requirement
  // that makes AP-style prefix filtering sound across mini-batch windows.
  // Indexes that do not use AP bounds ignore it.
  virtual void Construct(const Stream& window, const MaxVector& global_max,
                         std::vector<ResultPair>* pairs) = 0;

  // Appends every pair (y in index, x) with dot >= theta. Does not mutate
  // the index: all working state lives in *scratch and counters accrue
  // into scratch->stats. After Construct() returns, concurrent calls from
  // different threads with distinct scratches are safe.
  virtual void Query(const StreamItem& x, BatchQueryScratch* scratch,
                     std::vector<ResultPair>* pairs) const = 0;

  // Single-threaded convenience: same contract, using an internal scratch
  // and folding its counters into stats().
  void Query(const StreamItem& x, std::vector<ResultPair>* pairs) {
    scratch_.stats = RunStats{};
    Query(x, &scratch_, pairs);
    stats_ += scratch_.stats;
  }

  virtual void Clear() = 0;
  virtual const char* name() const = 0;

  // Approximate resident bytes of the built index (posting lists plus any
  // per-vector side structures). The MB framework samples this at window
  // close, where the per-window index peaks. Pure virtual on purpose: a
  // defaulted `return 0` is a silent-zero trap — an index that forgets to
  // implement it ships a lying mem(MB) column (it has happened).
  virtual size_t MemoryBytes() const = 0;

  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }

 protected:
  RunStats stats_;
  BatchQueryScratch scratch_;  // backs the single-threaded Query overload
};

}  // namespace sssj

#endif  // SSSJ_INDEX_BATCH_INDEX_H_
