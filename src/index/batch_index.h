// Abstract interface for the batch (static apss) indexing schemes of §4.
// These are the building blocks the MiniBatch framework composes; the
// three primitives map 1:1 onto the paper's:
//   IndConstr-IDX → Construct()
//   CandGen-IDX + CandVer-IDX → Query()
//
// A batch index prunes with the *raw* dot-product threshold θ; the decay
// filter (ApplyDecay in Algorithm 1) is applied by the framework on top.
// This is sound because sim_Δt(x,y) ≤ dot(x,y).
#ifndef SSSJ_INDEX_BATCH_INDEX_H_
#define SSSJ_INDEX_BATCH_INDEX_H_

#include <vector>

#include "core/result.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/max_vector.h"

namespace sssj {

class BatchIndex {
 public:
  virtual ~BatchIndex() = default;

  // Builds the index over `window` (time-ordered items), appending every
  // intra-window pair with dot >= theta to `pairs` (dot == sim fields hold
  // the raw dot; the caller applies decay).
  //
  // `global_max` must dominate, coordinate-wise, every vector in `window`
  // AND every vector later passed to Query() — this is the §6.1 requirement
  // that makes AP-style prefix filtering sound across mini-batch windows.
  // Indexes that do not use AP bounds ignore it.
  virtual void Construct(const Stream& window, const MaxVector& global_max,
                         std::vector<ResultPair>* pairs) = 0;

  // Appends every pair (y in index, x) with dot >= theta.
  virtual void Query(const StreamItem& x, std::vector<ResultPair>* pairs) = 0;

  virtual void Clear() = 0;
  virtual const char* name() const = 0;

  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }

 protected:
  RunStats stats_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_BATCH_INDEX_H_
