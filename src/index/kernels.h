// Vectorized scoring kernels over the SoA posting columns (util/simd.h
// provides the ISA dispatch; this layer speaks the index's vocabulary:
// columns, decay, sparse dots).
//
// Three kernels cover every hot accumulation loop:
//   DecayColumn   — exp(-λ·(now − ts[k])) for a whole column run; the only
//                   tolerance-bearing kernel (polynomial exp instead of
//                   libm, pinned to the scalar path under 1e-9 relative).
//   ProductColumn — q · col[k]; lane-wise IEEE multiply, bit-identical to
//                   the scalar expression, so the MB probe paths and the
//                   STR-INV scan produce bit-identical output either way.
//   SparseDot     — merge-join dot product used by verification. The SIMD
//                   variant only accelerates cursor advancement (8-wide
//                   dim compares); matched products are accumulated one by
//                   one in ascending-dimension order, so the result is
//                   bit-identical to SparseVector::Dot.
//
// Callers gate on a `use_simd` flag resolved once from
// EngineConfig::kernel; with the flag off every kernel reduces to the
// exact scalar reference code, which keeps the sharded/MB determinism
// pins untouched.
#ifndef SSSJ_INDEX_KERNELS_H_
#define SSSJ_INDEX_KERNELS_H_

#include <cstddef>

#include "core/sparse_vector.h"
#include "core/types.h"
#include "util/simd.h"

namespace sssj {
namespace kernels {

// Runs shorter than this stay on the per-entry scalar code: below ~2
// vector widths the buffer bookkeeping costs more than the lanes save.
inline constexpr size_t kMinSimdRun = 8;

// out[k] = exp(-lambda * (now - ts[k])) for k in [0, n).
void DecayColumn(const Timestamp* ts, size_t n, Timestamp now, double lambda,
                 double* out);

// Single-entry decay through the same vector code path (a one-element
// DecayColumn hits the padded-tail lane), so the value is bit-identical
// to the one a full column pass would produce for that entry. Sharded
// workers with sparse candidate ownership use this instead of computing
// whole columns they would mostly not read.
inline double DecayOne(Timestamp ts, Timestamp now, double lambda) {
  double out;
  simd::DecayBlock(&ts, 1, now, lambda, &out);
  return out;
}

// out[k] = q * col[k] for k in [0, n). Bit-identical to the scalar loop.
void ProductColumn(const double* col, size_t n, double q, double* out);

// dot(a, b) over the sorted coordinate lists. With use_simd false this is
// exactly SparseVector::Dot; with it true the merge cursors skip ahead
// with vector compares but the accumulation (and thus the result bits)
// is unchanged.
double SparseDot(const SparseVector& a, const SparseVector& b, bool use_simd);

}  // namespace kernels
}  // namespace sssj

#endif  // SSSJ_INDEX_KERNELS_H_
