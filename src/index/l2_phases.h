// Phase decomposition of STR-L2 arrival processing (Algorithms 6–8, green
// lines). StreamL2Index originally implemented candidate generation,
// verification, and index construction as one monolithic ProcessArrival;
// the phases live here as free function templates so that the sequential
// index and the sharded parallel index (sharded_stream_index.h) execute
// the *same* code, bound check for bound check.
//
// The templates are parameterized over three policy hooks:
//   ListLookup    PostingList* (DimId)      — where posting lists live
//                                             (one map, or dim-sharded maps)
//   OwnsCandidate bool (VectorId)           — which candidates this caller
//                                             accumulates (always-true for
//                                             the sequential index; id-hash
//                                             partition for a shard worker)
//   OnExpired     void (PostingList&, size_t n) — what to do when the
//                                             backward scan hits the first
//                                             expired entry (truncate
//                                             eagerly, or defer so the scan
//                                             stays read-only for
//                                             concurrent workers)
//
// Correctness of the candidate partition: every pruning decision in the L2
// scheme (remscore admission, l2bound early prune, ps1 verification) reads
// only the query vector, the candidate's own accumulator slot, and the
// candidate's posting entries — never another candidate's state. A worker
// that scans all lists but accumulates only its own candidates therefore
// reproduces the sequential per-candidate computation exactly, including
// floating-point accumulation order, which is what makes the sharded
// engine's output deterministic and identical to the sequential one.
// (Per-dim partitioning of the *bound checks* would not be sound: a shard
// seeing only its own dimensions would under-estimate the partial dot
// product and could prune a globally similar pair.)
#ifndef SSSJ_INDEX_L2_PHASES_H_
#define SSSJ_INDEX_L2_PHASES_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/result.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/stream_item.h"
#include "index/candidate_map.h"
#include "index/kernels.h"
#include "index/posting_list.h"
#include "index/residual_store.h"

namespace sssj {

// Kernel selection plus the per-caller scratch the vectorized generate
// scan accumulates into. With use_simd false (the default) every phase
// runs the exact scalar reference code. With it true, the generate scan
// precomputes each span's decay column with kernels::DecayColumn before
// the per-entry walk, and verification's full dot products go through
// kernels::SparseDot. Each concurrent caller (the sequential index, or
// one shard worker) owns its own state; the decay buffer is reused
// across spans and arrivals.
struct L2KernelState {
  bool use_simd = false;
  // How many workers share this scan: each owns ~1/owner_share of the
  // candidates (1 = sequential, S for a shard worker). Sparse ownership
  // makes whole-column decay wasteful — every worker would vectorize
  // exp over ALL entries, S-fold redundant across workers and more
  // total exp work than the scalar path once S exceeds the vector
  // speedup. Above the threshold below, workers evaluate decay per
  // owned entry via kernels::DecayOne instead, which goes through the
  // same vector code path and is bit-identical to the column values —
  // so the choice never shows in the output.
  size_t owner_share = 1;
  std::vector<double> decay;  // span-sized scratch, grown on demand
  // Frozen-block decompression scratch for the tiered posting lists:
  // the generate scan thaws one cold block at a time into this buffer.
  // Per caller (sequential index / shard worker), so concurrent workers
  // never share decode state even when reading the same frozen block.
  FrozenColumns posting;

  // Column pays off while the per-worker share of entries is dense
  // enough that len · (vectorized exp) < (len/S) · (one-lane exp);
  // with a ~4x lane win that crosses over around S = 4.
  static constexpr size_t kMaxOwnerShareForColumn = 4;

  // Fills decay[0..len) for a span and returns the buffer; nullptr when
  // the caller should evaluate per entry instead (scalar path: libm
  // std::exp; simd path with sparse ownership: kernels::DecayOne). No
  // span length gate on purpose: span boundaries (buffer wrap points)
  // can differ between otherwise-identical runs (eager vs deferred
  // expiry), and the simd path's per-element values must not depend on
  // how spans batch — DecayColumn and DecayOne guarantee exactly that
  // (padded tails, see util/simd.h), which keeps the "identical output
  // for every thread count" determinism bar intact.
  const double* DecayForSpan(const PostingSpan& sp, Timestamp now,
                             double lambda) {
    if (!use_simd || owner_share > kMaxOwnerShareForColumn) return nullptr;
    if (decay.size() < sp.len) decay.resize(sp.len);
    kernels::DecayColumn(sp.ts, sp.len, now, lambda, decay.data());
    return decay.data();
  }
};

// Ablation switches for the three ℓ2 pruning rules. Disabling a rule never
// changes the output (each rule only skips provably-dissimilar work); it
// changes how much work is done — which is exactly what the ablation bench
// measures. All enabled by default.
struct L2IndexOptions {
  bool use_remscore_bound = true;  // admission: rs2·e^{−λΔt} ≥ θ (Alg 7 l.7)
  bool use_l2bound = true;         // early prune: C + ||x'||·||y'||·e^{−λΔt}
  bool use_ps1_bound = true;       // verification: (C + Q)·e^{−λΔt} ≥ θ
};

// Counters produced by one phase invocation. Workers keep a private copy
// and the coordinator folds them into the index-wide RunStats, so the
// merged numbers match a sequential run field for field.
struct L2PhaseStats {
  uint64_t entries_traversed = 0;
  uint64_t candidates_generated = 0;
  uint64_t l2_prunes = 0;
  uint64_t verify_calls = 0;
  uint64_t full_dots = 0;
  uint64_t pairs_emitted = 0;

  void MergeInto(RunStats* stats) const {
    stats->entries_traversed += entries_traversed;
    stats->candidates_generated += candidates_generated;
    stats->l2_prunes += l2_prunes;
    stats->verify_calls += verify_calls;
    stats->full_dots += full_dots;
    stats->pairs_emitted += pairs_emitted;
  }
};

// prefix_norms[i] = ||x'_i||, the norm of coordinates strictly before i.
inline void L2ComputePrefixNorms(const SparseVector& v,
                                 std::vector<double>* out) {
  const size_t n = v.nnz();
  out->assign(n, 0.0);
  double sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    (*out)[i] = std::sqrt(sq);
    sq += v.coord(i).value * v.coord(i).value;
  }
}

// ---- Phase 1: candidate generation (Algorithm 7, green lines) ----
// Scans x's dimensions in reverse coordinate order. Lists are time-sorted,
// so the expired run at the front of each list is located by one binary
// search on the `ts` column and reported to `on_expired`; the live suffix
// is then walked newest → oldest over raw per-column pointers,
// accumulating dot-product contributions into `cands` for every candidate
// accepted by `owns`. The `id`/`ts` columns are read densely; `value` and
// `prefix_norm` are only touched for owned, admitted candidates. The
// traversal visits live entries in exactly the order of the original
// per-entry scan, so per-candidate floating-point accumulation — and with
// it the sharded determinism contract — is unchanged.
template <typename ListLookup, typename OwnsCandidate, typename OnExpired>
void L2GenerateCandidates(const StreamItem& x, const DecayParams& params,
                          const L2IndexOptions& options,
                          const std::vector<double>& prefix_norms,
                          Timestamp cutoff, ListLookup&& lookup,
                          OwnsCandidate&& owns, OnExpired&& on_expired,
                          L2KernelState* kernel, CandidateMap* cands,
                          L2PhaseStats* stats) {
  const SparseVector& v = x.vec;
  const size_t n = v.nnz();
  double rst = v.norm() * v.norm();
  // Frozen-block decode scratch: the kernel state's buffer when the
  // caller has one, else a function-local fallback (which allocates only
  // if a scan actually reaches a frozen block).
  FrozenColumns local_scratch;
  FrozenColumns* posting_scratch =
      kernel != nullptr ? &kernel->posting : &local_scratch;
  for (size_t i = n; i-- > 0;) {  // reverse coordinate order
    const Coord& c = v.coord(i);
    const double rs2 = std::sqrt(std::max(rst, 0.0));
    PostingList* list = lookup(c.dim);
    if (list != nullptr && !list->empty()) {
      const size_t expired = list->LowerBoundTs(cutoff);
      const size_t live = list->size() - expired;
      if (expired > 0) on_expired(*list, expired);
      // A truncating on_expired leaves the live run at [0, live); a
      // deferring one leaves it at [expired, size). Either way it is the
      // last `live` entries, and the walk starts only now because
      // truncation may rebuild the storage. The block-cursor walk hands
      // out the hot tail's raw segments first, then decompresses cold
      // frozen blocks one at a time into the caller's scratch — the
      // entry visit order (and so per-candidate FP accumulation) is
      // identical to the untiered two-segment scan.
      const bool kernel_exp = kernel != nullptr && kernel->use_simd;
      list->ForSpansNewestFirst(
          list->size() - live, list->size(), posting_scratch,
          [&](const PostingSpan& sp) {
        // SIMD path with dense ownership: one vectorized exp pass over
        // the span's ts column. SIMD path with sparse ownership (high
        // shard counts): per owned entry via DecayOne — bit-identical
        // values, no redundant column work across workers. Scalar path:
        // per-entry std::exp, the bit-exact reference.
        const double* decay_col =
            kernel == nullptr ? nullptr
                              : kernel->DecayForSpan(sp, x.ts, params.lambda);
        for (size_t k = sp.len; k-- > 0;) {  // newest entry first
          const VectorId eid = sp.id[k];
          if (!owns(eid)) continue;
          ++stats->entries_traversed;
          const double decay =
              decay_col != nullptr
                  ? decay_col[k]
                  : (kernel_exp
                         ? kernels::DecayOne(sp.ts[k], x.ts, params.lambda)
                         : std::exp(-params.lambda * (x.ts - sp.ts[k])));
          CandidateMap::Slot* slot = cands->FindOrCreate(eid);
          if (slot->score < 0.0) continue;  // l2-pruned: final
          if (slot->score == 0.0) {
            // remscore = rs2 · e^{−λΔt} (line 7, AP part disabled).
            if (options.use_remscore_bound &&
                !BoundAtLeast(rs2 * decay, params.theta)) {
              continue;
            }
            slot->ts = sp.ts[k];
            cands->NoteAdmitted();
            ++stats->candidates_generated;
          }
          slot->score += c.value * sp.value[k];
          if (options.use_l2bound) {
            const double l2bound =
                slot->score + prefix_norms[i] * sp.prefix_norm[k] * decay;
            if (!BoundAtLeast(l2bound, params.theta)) {
              slot->score = CandidateMap::kPruned;
              ++stats->l2_prunes;
            }
          }
        }
      });
    }
    rst -= c.value * c.value;
  }
}

// ---- Phase 2: candidate verification (Algorithm 8, green lines) ----
// Emits every verified pair through `emit` in the (deterministic) order
// candidates were first touched during generation.
template <typename EmitFn>
void L2VerifyCandidates(const StreamItem& x, const DecayParams& params,
                        const L2IndexOptions& options,
                        const CandidateMap& cands,
                        const ResidualStore& residuals,
                        const L2KernelState* kernel, L2PhaseStats* stats,
                        EmitFn&& emit) {
  const bool use_simd = kernel != nullptr && kernel->use_simd;
  cands.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats->verify_calls;
    const ResidualRecord* rec = residuals.Find(id);
    if (rec == nullptr) return;  // defensive: record outlives its postings
    const double decay = std::exp(-params.lambda * (x.ts - ts));
    if (options.use_ps1_bound) {
      const double ps1 = (score + rec->q) * decay;
      if (!BoundAtLeast(ps1, params.theta)) return;
    }
    ++stats->full_dots;
    // SparseDot is bit-identical to x.vec.Dot on both kernel paths; the
    // SIMD variant only accelerates the merge cursors.
    const double s = score + kernels::SparseDot(x.vec, rec->prefix, use_simd);
    const double sim = s * decay;
    if (sim >= params.theta) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = s;
      p.sim = sim;
      p.Canonicalize();
      emit(p);
      ++stats->pairs_emitted;
    }
  });
}

// ---- Phase 3: index construction (Algorithm 6, green lines) ----
// The b2 bound admits a suffix of x's coordinates into the index; the
// un-indexed prefix goes to the residual store. This computes the split
// point: coordinates [first_indexed, nnz) are indexed, `q` is the pscore
// (Q[x]) frozen at the split. first_indexed == nnz means x is never
// indexed (its norm cannot reach θ — only possible for non-unit input).
struct L2IndexSplit {
  size_t first_indexed = 0;
  double q = 0.0;
};

inline L2IndexSplit L2ComputeIndexSplit(const SparseVector& v, double theta) {
  const size_t n = v.nnz();
  double bt = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pscore = std::sqrt(bt);  // b2 before this coordinate
    bt += v.coord(i).value * v.coord(i).value;
    if (BoundAtLeast(std::sqrt(bt), theta)) return L2IndexSplit{i, pscore};
  }
  return L2IndexSplit{n, 0.0};
}

// Builds x's residual record for the given split (callers Insert it into
// their ResidualStore). Only valid when split.first_indexed < v.nnz().
inline ResidualRecord L2MakeResidualRecord(const StreamItem& x,
                                           const L2IndexSplit& split) {
  ResidualRecord rec;
  rec.prefix = x.vec.Prefix(split.first_indexed);
  rec.q = split.q;
  rec.ts = x.ts;
  rec.vm = x.vec.max_value();
  rec.sum = x.vec.sum();
  rec.nnz = static_cast<uint32_t>(x.vec.nnz());
  return rec;
}

}  // namespace sssj

#endif  // SSSJ_INDEX_L2_PHASES_H_
