#include "index/residual_store.h"

namespace sssj {

ResidualRecord& ResidualStore::Insert(VectorId id, ResidualRecord rec) {
  ResidualRecord& stored = map_.insert(id, std::move(rec));
  if (track_prefix_dims_) RegisterPrefixDims(id, stored.prefix);
  return stored;
}

void ResidualStore::ExpireOlderThan(Timestamp cutoff) {
  while (!map_.empty() && map_.front().second.ts < cutoff) {
    map_.pop_front();
  }
  // prefix_dims_ entries pointing at dropped ids are cleaned lazily.
}

void ResidualStore::Clear() {
  map_.clear();
  prefix_dims_.clear();
}

size_t ResidualStore::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [id, rec] : map_) {
    bytes += sizeof(VectorId) + sizeof(ResidualRecord) +
             rec.prefix.nnz() * sizeof(Coord);
  }
  for (const auto& [dim, ids] : prefix_dims_) {
    bytes += sizeof(DimId) + ids.capacity() * sizeof(VectorId);
  }
  return bytes;
}

void ResidualStore::RegisterPrefixDims(VectorId id,
                                       const SparseVector& prefix) {
  for (const Coord& c : prefix) {
    prefix_dims_[c.dim].push_back(id);
  }
}

}  // namespace sssj
