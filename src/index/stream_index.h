// Abstract interface for the streaming indexes used by the STR framework
// (Algorithm 5): a single, fully-online index with time filtering built in.
#ifndef SSSJ_INDEX_STREAM_INDEX_H_
#define SSSJ_INDEX_STREAM_INDEX_H_

#include "core/result.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/stream_item.h"

namespace sssj {

class StreamIndex {
 public:
  virtual ~StreamIndex() = default;

  // Processes one arrival: emits every pair (y, x) with y earlier in the
  // stream and sim_Δt(x,y) ≥ θ, then inserts x into the index
  // (IndConstr-IDX-STR, Algorithm 6). Arrival timestamps must be
  // non-decreasing — enforced by the StreamingJoin wrapper.
  virtual void ProcessArrival(const StreamItem& x, ResultSink* sink) = 0;

  virtual void Clear() = 0;
  virtual const char* name() const = 0;

  // Posting entries currently alive (appended and not yet time-pruned);
  // the memory-footprint signal of the paper's STR-vs-MB discussion.
  virtual size_t live_posting_entries() const = 0;

  // Approximate resident bytes of the index structures (posting-list
  // backing buffers + residual store). The paper reports that when STR
  // fails it fails on memory (§7): this is the number to watch. Pure
  // virtual on purpose: a defaulted `return 0` is a silent-zero trap —
  // an index that forgets to implement it ships a lying mem(MB) column.
  virtual size_t MemoryBytes() const = 0;

  RunStats& stats() { return stats_; }
  const RunStats& stats() const { return stats_; }

 protected:
  void NoteIndexed(size_t n) {
    live_entries_ += n;
    stats_.entries_indexed += n;
    if (live_entries_ > stats_.peak_index_entries) {
      stats_.peak_index_entries = live_entries_;
    }
  }
  void NotePruned(size_t n) {
    live_entries_ -= n;
    stats_.entries_pruned += n;
  }

  RunStats stats_;
  size_t live_entries_ = 0;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_STREAM_INDEX_H_
