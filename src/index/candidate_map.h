// Accumulator array C[ι(y)] used during candidate generation (Algorithms 3
// and 7). Open-addressing hash map with generation stamps so that Reset()
// is O(1) and no memory churn happens per query.
//
// Semantics required for correctness (see DESIGN.md §4):
//  * score 0            — not (yet) a candidate; admitted only while the
//                         remscore bound still reaches θ.
//  * score > 0          — live candidate (coordinate values are strictly
//                         positive, so any accumulation is > 0).
//  * score = kPruned    — candidate killed by the l2bound check. A pruned
//                         candidate must never be readmitted: readmission
//                         would restart accumulation from zero, undercount
//                         the indexed dot product, and cause false
//                         negatives. The l2bound proof (Cauchy–Schwarz)
//                         shows a pruned pair is definitively dissimilar,
//                         so dropping it outright is safe.
#ifndef SSSJ_INDEX_CANDIDATE_MAP_H_
#define SSSJ_INDEX_CANDIDATE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"

namespace sssj {

class CandidateMap {
 public:
  static constexpr double kPruned = -1.0;

  struct Slot {
    VectorId id = kInvalidVectorId;
    double score = 0.0;
    Timestamp ts = 0.0;  // candidate's arrival time (filled on admission)
    uint32_t generation = 0;
  };

  explicit CandidateMap(size_t initial_capacity = 1024);

  // Invalidates all slots in O(1).
  void Reset();

  // Returns the slot for `id`, creating a fresh zero slot on first access
  // in this generation. Never returns nullptr; grows as needed.
  Slot* FindOrCreate(VectorId id);

  // Number of distinct ids admitted (score ever made positive) since Reset.
  size_t admitted() const { return admitted_; }
  void NoteAdmitted() { ++admitted_; }

  // Iterates over live candidates (score > 0) of the current generation.
  template <typename Fn>  // Fn(VectorId, double score, Timestamp ts)
  void ForEachLive(Fn&& fn) const {
    for (uint32_t idx : touched_) {
      const Slot& s = slots_[idx];
      if (s.generation == generation_ && s.score > 0.0) {
        fn(s.id, s.score, s.ts);
      }
    }
  }

  size_t touched_count() const { return touched_.size(); }

 private:
  void Grow();
  size_t Mask(uint64_t h) const { return h & (slots_.size() - 1); }
  static uint64_t HashId(VectorId id) {
    uint64_t x = id + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> touched_;  // slot indices used in this generation
  uint32_t generation_ = 1;
  size_t admitted_ = 0;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_CANDIDATE_MAP_H_
