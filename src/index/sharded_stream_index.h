// Sharded parallel STR-L2 (the paper's recommended index, scaled across
// cores). Exact and deterministic: for any shard count the emitted pair
// set is identical to the sequential StreamL2Index, because every
// candidate is processed by exactly one worker running the sequential
// per-candidate computation (see index/l2_phases.h for the argument).
//
// Layout and schedule per arrival x:
//
//   posting lists   — physically partitioned by dim % S across shard
//                     states (parallel construction/expiry, better cache
//                     locality per worker),
//   generation      — worker w scans *all* lists (read-only) but
//                     accumulates only candidates with id % S == w into
//                     its private CandidateMap; all ℓ2 bounds apply at
//                     full sequential strength,
//   verification    — worker w verifies its own candidates against the
//                     shared residual store (read-only) into a private
//                     pair buffer,
//   construction    — worker w appends x's indexed coordinates for its
//                     own dims and truncates time-expired postings of its
//                     own lists,
//   merge           — the coordinator emits pair buffers in shard order
//                     and folds per-worker counters into RunStats, so
//                     stats match a sequential run field for field.
//
// Two ParallelFor barriers per arrival; the single-threaded configuration
// never constructs this class (SssjEngine keeps StreamL2Index for
// num_threads == 1).
#ifndef SSSJ_INDEX_SHARDED_STREAM_INDEX_H_
#define SSSJ_INDEX_SHARDED_STREAM_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/candidate_map.h"
#include "index/l2_phases.h"
#include "index/posting_list.h"
#include "index/residual_store.h"
#include "index/stream_index.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace sssj {

class ShardedStreamIndex : public StreamIndex {
 public:
  // `num_threads` is both the worker count and the shard count (min 1).
  // `use_simd` turns on the vectorized scoring kernels per worker; each
  // shard owns its own kernel scratch, and the kernels are element-wise,
  // so the SIMD output is identical for every shard count (same
  // per-candidate accumulation argument as the scalar path).
  // `tiered` enables the frozen-block cold tier. Freezing (and every other
  // list mutation) happens only in phase 2 by the shard that owns the
  // list's dim; phase-1 cross-shard scans see either the pre-freeze or the
  // post-freeze state of a barrier-separated arrival, never a block under
  // construction, so the sharing stays TSan-clean.
  explicit ShardedStreamIndex(const DecayParams& params, size_t num_threads,
                              const L2IndexOptions& options = {},
                              bool use_simd = false,
                              const TieredStorageOptions& tiered = {});

  // Same, but runs the two per-arrival barriers on an injected pool shared
  // with other indexes (JoinService: one pool per service, not one per
  // engine). The shard count stays `num_threads` — it determines the
  // candidate partition and hence the output order — while the pool may
  // have any size; a null pool gets a private one. Output is identical to
  // the own-pool constructor: determinism depends on the shard count, not
  // on which thread runs which shard.
  ShardedStreamIndex(const DecayParams& params, size_t num_threads,
                     std::shared_ptr<ThreadPool> pool,
                     const L2IndexOptions& options = {},
                     bool use_simd = false,
                     const TieredStorageOptions& tiered = {});

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return "L2-SHARDED"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override;

  size_t num_shards() const { return shards_.size(); }
  size_t residual_count() const { return residuals_.size(); }

 private:
  struct Shard {
    // The owner-writes capability. Exactly one thread holds it at a time:
    // worker w takes it (RoleLock) for the span of each phase body, and
    // the coordinator takes it after the barrier to merge/clear — making
    // "only the owning worker mutates a shard" a compile-checked contract
    // rather than a comment. `lists` is deliberately NOT guarded: phase 1
    // reads lists *across* shards by design (mutation is deferred to
    // phase 2, where only the owner touches them — the phase helpers
    // below carry the REQUIRES), so a guarded-by would outlaw the one
    // cross-shard access the schedule is built around.
    Role owner;
    std::unordered_map<DimId, PostingList> lists;  // dims with dim % S == w
    // candidates with id % S == w (scratch)
    CandidateMap cands SSSJ_GUARDED_BY(owner);
    // kernel selection + worker-private scratch
    L2KernelState kernel SSSJ_GUARDED_BY(owner);
    // Per-arrival outputs, merged by the coordinator after the barrier.
    L2PhaseStats phase_stats SSSJ_GUARDED_BY(owner);
    std::vector<ResultPair> pairs SSSJ_GUARDED_BY(owner);
    size_t appended SSSJ_GUARDED_BY(owner) = 0;
    size_t pruned SSSJ_GUARDED_BY(owner) = 0;
  };

  // Phase bodies, one call per worker per arrival; both run under the
  // shard's owner role (worker w passes shards_[w]). Phase 1 reads lists
  // across shards but writes only the owned shard's scratch; phase 2
  // verifies owned candidates and mutates only owned lists.
  void GeneratePhase(const StreamItem& x, Timestamp cutoff, size_t w,
                     Shard& shard) SSSJ_REQUIRES(shard.owner);
  void VerifyAndConstructPhase(const StreamItem& x, Timestamp cutoff,
                               const L2IndexSplit& split, size_t w,
                               Shard& shard) SSSJ_REQUIRES(shard.owner);

  DecayParams params_;
  L2IndexOptions options_;
  TieredStorageOptions tiered_;
  std::vector<Shard> shards_;
  ResidualStore residuals_;  // shared; written only by the coordinator
  std::vector<double> prefix_norms_;  // scratch; read-only during phases
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_SHARDED_STREAM_INDEX_H_
