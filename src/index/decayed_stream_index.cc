#include "index/decayed_stream_index.h"

#include <algorithm>
#include <cmath>

namespace sssj {

void BruteForceDecayJoin(const Stream& stream, double theta,
                         const DecayFunction& decay, ResultSink* sink) {
  const double tau = decay.Horizon(theta);
  size_t oldest = 0;
  for (size_t j = 0; j < stream.size(); ++j) {
    const StreamItem& x = stream[j];
    while (oldest < j && x.ts - stream[oldest].ts > tau) ++oldest;
    for (size_t i = oldest; i < j; ++i) {
      const StreamItem& y = stream[i];
      const double d = x.vec.Dot(y.vec);
      if (d <= 0.0) continue;
      const double sim = d * decay.Eval(x.ts - y.ts);
      if (sim >= theta) {
        ResultPair p;
        p.a = y.id;
        p.b = x.id;
        p.ta = y.ts;
        p.tb = x.ts;
        p.dot = d;
        p.sim = sim;
        p.Canonicalize();
        sink->Emit(p);
      }
    }
  }
}

void GeneralDecayInvIndex::ProcessArrival(const StreamItem& x,
                                          ResultSink* sink) {
  const Timestamp cutoff = x.ts - tau_;
  ++stats_.vectors_processed;
  cands_.Reset();
  for (const Coord& c : x.vec) {
    auto it = lists_.find(c.dim);
    if (it == lists_.end()) continue;
    PostingList& list = it->second;
    list.NoteScanned(stats_.vectors_processed);
    NotePruned(list.TruncateFront(list.LowerBoundTs(cutoff)));
    list.ForEachNewestFirst(0, list.size(), &posting_,
                            [&](const PostingSpan& sp, size_t k) {
      ++stats_.entries_traversed;
      CandidateMap::Slot* slot = cands_.FindOrCreate(sp.id[k]);
      if (slot->score == 0.0) {
        slot->ts = sp.ts[k];
        cands_.NoteAdmitted();
        ++stats_.candidates_generated;
      }
      slot->score += c.value * sp.value[k];
    });
  }
  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    const double sim = score * decay_.Eval(x.ts - ts);
    if (sim >= theta_) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = score;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  });
  for (const Coord& c : x.vec) {
    PostingList& list = lists_[c.dim];
    list.Append(x.id, c.value, 0.0, x.ts);
    list.MaybeFreeze(tiered_, stats_.vectors_processed);
  }
  NoteIndexed(x.vec.nnz());
}

void GeneralDecayInvIndex::Clear() {
  lists_.clear();
  live_entries_ = 0;
}

void GeneralDecayL2Index::ProcessArrival(const StreamItem& x,
                                         ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - tau_;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  cands_.Reset();
  const size_t n = v.nnz();
  prefix_norms_.assign(n, 0.0);
  {
    double sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      prefix_norms_[i] = std::sqrt(sq);
      sq += v.coord(i).value * v.coord(i).value;
    }
  }

  double rst = v.norm() * v.norm();
  for (size_t i = n; i-- > 0;) {
    const Coord& c = v.coord(i);
    const double rs2 = std::sqrt(std::max(rst, 0.0));
    auto it = lists_.find(c.dim);
    if (it != lists_.end()) {
      PostingList& list = it->second;
      list.NoteScanned(stats_.vectors_processed);
      NotePruned(list.TruncateFront(list.LowerBoundTs(cutoff)));
      list.ForEachNewestFirst(0, list.size(), &posting_,
                              [&](const PostingSpan& sp, size_t k) {
        ++stats_.entries_traversed;
        const double f = decay_.Eval(x.ts - sp.ts[k]);
        CandidateMap::Slot* slot = cands_.FindOrCreate(sp.id[k]);
        if (slot->score < 0.0) return;
        if (slot->score == 0.0) {
          if (!BoundAtLeast(rs2 * f, theta_)) return;
          slot->ts = sp.ts[k];
          cands_.NoteAdmitted();
          ++stats_.candidates_generated;
        }
        slot->score += c.value * sp.value[k];
        const double l2bound =
            slot->score + prefix_norms_[i] * sp.prefix_norm[k] * f;
        if (!BoundAtLeast(l2bound, theta_)) {
          slot->score = CandidateMap::kPruned;
          ++stats_.l2_prunes;
        }
      });
    }
    rst -= c.value * c.value;
  }

  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    const ResidualRecord* rec = residuals_.Find(id);
    if (rec == nullptr) return;
    const double f = decay_.Eval(x.ts - ts);
    if (!BoundAtLeast((score + rec->q) * f, theta_)) return;
    ++stats_.full_dots;
    const double s = score + v.Dot(rec->prefix);
    const double sim = s * f;
    if (sim >= theta_) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = s;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  });

  double bt = 0.0;
  bool first_indexed = true;
  size_t appended = 0;
  for (size_t i = 0; i < n; ++i) {
    const Coord& c = v.coord(i);
    const double pscore = std::sqrt(bt);
    bt += c.value * c.value;
    if (BoundAtLeast(std::sqrt(bt), theta_)) {
      if (first_indexed) {
        ResidualRecord rec;
        rec.prefix = v.Prefix(i);
        rec.q = pscore;
        rec.ts = x.ts;
        rec.vm = v.max_value();
        rec.sum = v.sum();
        rec.nnz = static_cast<uint32_t>(n);
        residuals_.Insert(x.id, std::move(rec));
        first_indexed = false;
      }
      PostingList& list = lists_[c.dim];
      list.Append(x.id, c.value, prefix_norms_[i], x.ts);
      list.MaybeFreeze(tiered_, stats_.vectors_processed);
      ++appended;
    }
  }
  NoteIndexed(appended);
}

void GeneralDecayL2Index::Clear() {
  lists_.clear();
  residuals_.Clear();
  live_entries_ = 0;
}

}  // namespace sssj
