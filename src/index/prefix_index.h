// Prefix-filtering batch indexes: AP (Bayardo et al.), L2AP (Anastasiu &
// Karypis), and the paper's L2 — one implementation parameterized by a
// bounds policy, mirroring the paper's red/green pseudocode convention
// (Algorithms 2–4):
//   * red lines  (AP bounds: b1, sz1, rs1, ds1, sz2) — enabled by kAp;
//   * green lines (ℓ2 bounds: b2, rs2, l2bound)      — enabled by kL2;
//   * L2AP enables both, AP only red, L2 only green.
#ifndef SSSJ_INDEX_PREFIX_INDEX_H_
#define SSSJ_INDEX_PREFIX_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/batch_index.h"
#include "index/candidate_map.h"
#include "index/posting_list.h"
#include "index/residual_store.h"

namespace sssj {

struct ApPolicy {
  static constexpr bool kAp = true;
  static constexpr bool kL2 = false;
  static constexpr const char* kName = "AP";
};

struct L2apPolicy {
  static constexpr bool kAp = true;
  static constexpr bool kL2 = true;
  static constexpr const char* kName = "L2AP";
};

struct L2Policy {
  static constexpr bool kAp = false;
  static constexpr bool kL2 = true;
  static constexpr const char* kName = "L2";
};

template <typename Policy>
class PrefixIndex : public BatchIndex {
 public:
  // `use_simd` batches the probe loop's contribution and prefix-norm
  // products through kernels::ProductColumn and routes the verification
  // dots through kernels::SparseDot — all bit-identical to the scalar
  // expressions, so both kernel paths emit the same pairs and scores.
  explicit PrefixIndex(double theta, bool use_simd = false)
      : theta_(theta), use_simd_(use_simd) {}

  void Construct(const Stream& window, const MaxVector& global_max,
                 std::vector<ResultPair>* pairs) override;
  using BatchIndex::Query;
  void Query(const StreamItem& x, BatchQueryScratch* scratch,
             std::vector<ResultPair>* pairs) const override;
  void Clear() override;
  const char* name() const override { return Policy::kName; }
  size_t MemoryBytes() const override;

  // Number of posting entries currently held (tests: index-size reduction
  // vs INV is the whole point of prefix filtering).
  size_t IndexedEntries() const;

 private:
  void QueryInternal(const StreamItem& x, BatchQueryScratch* scratch,
                     std::vector<ResultPair>* pairs) const;
  void AddInternal(const StreamItem& x);

  double theta_;
  bool use_simd_ = false;
  std::unordered_map<DimId, BatchPostingList> lists_;
  ResidualStore residuals_;
  MaxVector m_;     // global max (dominates window + future queries)
  MaxVector mhat_;  // max over *indexed* coordinate values (rs1 bound)
};

using ApIndex = PrefixIndex<ApPolicy>;
using L2apIndex = PrefixIndex<L2apPolicy>;
using L2Index = PrefixIndex<L2Policy>;

extern template class PrefixIndex<ApPolicy>;
extern template class PrefixIndex<L2apPolicy>;
extern template class PrefixIndex<L2Policy>;

}  // namespace sssj

#endif  // SSSJ_INDEX_PREFIX_INDEX_H_
