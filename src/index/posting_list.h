// Posting list backed by a circular buffer (paper §6.2).
//
// Entries are appended in arrival order. For the INV and L2 schemes the
// lists therefore stay sorted by timestamp, which enables the backward-scan
// optimization: scan newest→oldest during candidate generation and, on the
// first expired entry, truncate everything older in O(expired) time.
// The L2AP scheme loses the sorted property (re-indexing appends old items)
// and must scan forward, compacting expired entries in place.
#ifndef SSSJ_INDEX_POSTING_LIST_H_
#define SSSJ_INDEX_POSTING_LIST_H_

#include <cstddef>

#include "core/types.h"
#include "util/circular_buffer.h"

namespace sssj {

// One posting: vector reference, coordinate value, prefix magnitude
// ||y'_j|| (the L2AP/L2 addition; unused by INV), and arrival timestamp.
struct PostingEntry {
  VectorId id = 0;
  double value = 0.0;
  double prefix_norm = 0.0;
  Timestamp ts = 0.0;
};

class PostingList {
 public:
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const PostingEntry& operator[](size_t i) const { return entries_[i]; }

  void Append(const PostingEntry& e) { entries_.push_back(e); }

  // Drops the `n` oldest entries (backward-scan truncation, time-sorted
  // lists only). Returns n for convenience.
  size_t TruncateFront(size_t n) {
    entries_.truncate_front(n);
    return n;
  }

  // Removes every entry with ts < cutoff, preserving order (forward
  // compaction, used by L2AP whose lists are not time-sorted).
  // Returns the number of removed entries.
  size_t CompactExpired(Timestamp cutoff);

  void Clear() { entries_.clear(); }

  size_t capacity_bytes() const { return entries_.capacity_bytes(); }

 private:
  CircularBuffer<PostingEntry> entries_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_POSTING_LIST_H_
