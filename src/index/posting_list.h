// Posting list backed by a structure-of-arrays column store (paper §6.2
// implements posting lists as circular byte buffers; here each field is
// its own circular column so scans only stream the columns they read).
//
// Entries are appended in arrival order. For the INV and L2 schemes the
// lists therefore stay sorted by timestamp, which enables two
// optimizations used by the hot scan loops:
//   * the expiry boundary is found by binary search on the `ts` column
//     (LowerBoundTs) instead of per-entry checks, and everything older is
//     truncated in O(log n + shrink);
//   * candidate generation walks raw per-column pointers (Spans), reading
//     only `id`/`ts` densely and touching `value`/`prefix_norm` lazily.
// The L2AP scheme loses the sorted property (re-indexing appends old
// items) and must scan forward, compacting expired entries in place
// (CompactExpired works column-wise and never assumes time order).
//
// Tiered storage (ROADMAP item 2): when enabled via TieredStorageOptions
// a list is two tiers — a cold prefix of immutable FrozenBlocks
// (util/frozen_block.h) followed by the hot mutable circular tail.
// Logical indices still run 0 (oldest, possibly frozen) to size();
// MaybeFreeze migrates the oldest tail entries into blocks using the
// hot/cold classifier (dormancy by appends-since-last-scan, scan rate
// by an EWMA of arrivals between scans): scan-cold lists freeze
// compressed, scan-hot lists freeze raw zero-copy blocks whose columns
// the ForSpans* walks serve directly — only compressed blocks are
// decompressed, one at a time, into caller-owned FrozenColumns scratch.
// Expiry drops whole frozen blocks by their max-ts header; only the
// boundary block's ts stream is ever decoded. Raw blocks and the exact
// value tier read back bit-identical doubles, so freezing never changes
// engine output.
#ifndef SSSJ_INDEX_POSTING_LIST_H_
#define SSSJ_INDEX_POSTING_LIST_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.h"
#include "util/columnar_buffer.h"
#include "util/frozen_block.h"

namespace sssj {

// One posting: vector reference, coordinate value, prefix magnitude
// ||y'_j|| (the L2AP/L2 addition; unused by INV), and arrival timestamp.
// The batch indexes store rows of this struct directly; PostingList
// decomposes it into four parallel columns.
struct PostingEntry {
  VectorId id = 0;
  double value = 0.0;
  double prefix_norm = 0.0;
  Timestamp ts = 0.0;
};

// A physically contiguous run of postings: one raw pointer per column,
// all indexed by the same [0, len) offset. `begin` is the logical index
// (from the oldest entry) of the run's first posting. Pointers are
// invalidated by any mutation of the list; pointers into frozen-block
// scratch are additionally invalidated by the next block's decompression
// (consume each span before the walk moves on).
struct PostingSpan {
  const VectorId* id = nullptr;
  const double* value = nullptr;
  const double* prefix_norm = nullptr;
  const Timestamp* ts = nullptr;
  size_t begin = 0;
  size_t len = 0;
};

class PostingList {
 public:
  size_t size() const { return frozen_live_ + store_.size(); }
  bool empty() const { return frozen_live_ == 0 && store_.empty(); }

  // Per-column element access, logical index from the front (oldest).
  // Indices inside the frozen range decompress the containing block per
  // call — test/serialization convenience, not a hot path.
  VectorId id(size_t i) const {
    return i < frozen_live_ ? FrozenGet(i).id
                            : store_.Get<0>(i - frozen_live_);
  }
  double value(size_t i) const {
    return i < frozen_live_ ? FrozenGet(i).value
                            : store_.Get<1>(i - frozen_live_);
  }
  double prefix_norm(size_t i) const {
    return i < frozen_live_ ? FrozenGet(i).prefix_norm
                            : store_.Get<2>(i - frozen_live_);
  }
  Timestamp ts(size_t i) const {
    return i < frozen_live_ ? FrozenGet(i).ts
                            : store_.Get<3>(i - frozen_live_);
  }

  // Materializes one posting as a row (tests / serialization convenience;
  // hot loops should use the span walks instead).
  PostingEntry Get(size_t i) const {
    if (i < frozen_live_) return FrozenGet(i);
    const size_t t = i - frozen_live_;
    return PostingEntry{store_.Get<0>(t), store_.Get<1>(t), store_.Get<2>(t),
                        store_.Get<3>(t)};
  }

  void Append(VectorId id, double value, double prefix_norm, Timestamp ts) {
    store_.PushBack(id, value, prefix_norm, ts);
    ++appends_since_scan_;
  }
  void Append(const PostingEntry& e) {
    Append(e.id, e.value, e.prefix_norm, e.ts);
  }

  // ---- hot/cold classifier + freezing ----

  // Marks the list as scan-active (resets the dormancy counter) and,
  // when the index passes its arrival counter as `tick`, feeds the
  // scan-rate classifier: an EWMA of arrivals elapsed between
  // consecutive scans of this list. Indexes call this from
  // mutation-safe contexts only — the sharded engine from its
  // owner-writes phase, never from the read-only generate phase.
  void NoteScanned(uint64_t tick = 0) {
    appends_since_scan_ = 0;
    if (tick != 0) {
      if (last_scan_tick_ != 0 && tick > last_scan_tick_) {
        const uint64_t gap = tick - last_scan_tick_;
        const uint64_t ew = (3ull * scan_gap_ewma_ + gap) / 4;
        scan_gap_ewma_ = ew > UINT32_MAX ? UINT32_MAX
                                         : static_cast<uint32_t>(ew);
      }
      last_scan_tick_ = tick;
    }
  }

  // Arrivals between consecutive scans of this list (EWMA); 0 until two
  // ticked scans have been observed.
  uint32_t scan_gap() const { return scan_gap_ewma_; }

  // Migrates cold tail entries into frozen blocks when the mutable tail
  // outgrew the classifier's target. Two regimes, decided per call:
  //
  //   scan-cold — the list is dormant (many appends, no scans) or its
  //   scan rate is low enough that decompressing it on the rare scan is
  //   cheap (size <= scan_gap * cold_scan_budget; needs the index's
  //   arrival `tick`, see TieredStorageOptions). Keeps only a small
  //   mutable tail and freezes compressed blocks.
  //
  //   scan-hot — everything else. Keeps the large hot tail and freezes
  //   overflow into raw zero-copy blocks: scans read them directly (no
  //   thaw), so the only effect is squeezing out the circular buffer's
  //   capacity slack.
  //
  // No-op unless opts.enabled. Raw blocks are always exact; with the
  // exact value tier freeze timing is unobservable in engine output.
  void MaybeFreeze(const TieredStorageOptions& opts, uint64_t tick = 0) {
    if (!opts.enabled || opts.block_entries == 0) return;
    const bool scan_cold =
        appends_since_scan_ >= opts.dormant_after_appends ||
        (tick != 0 && scan_gap_ewma_ != 0 &&
         size() <= static_cast<uint64_t>(scan_gap_ewma_) *
                       opts.cold_scan_budget);
    if (tick != 0 || scan_cold) {
      // Scan-rate-tracked lists (and legacy dormant ones) all keep the
      // small tail and freeze in quanta, amending the newest block until
      // it fills: raw blocks scan zero-copy, so even a scan-hot list
      // loses nothing by freezing early — it just sheds the circular
      // buffer's power-of-two slack. The classifier only picks the
      // block form: compressed when scans are rare enough to amortize
      // the decode, raw otherwise.
      const bool compress = tick == 0 || scan_cold;
      size_t quantum = opts.cold_freeze_quantum != 0
                           ? opts.cold_freeze_quantum
                           : opts.block_entries;
      // Each amend rewrites the whole newest block, so a small quantum
      // on a frequently appended list is churn. For raw blocks — the
      // scan-hot head lists, which also absorb most appends — batch at
      // least a quarter block per amend: the extra mutable-tail slack
      // lives on only those few lists, while the memcpy traffic drops
      // by block/(4*quantum).
      if (!compress && quantum < opts.block_entries / 4) {
        quantum = opts.block_entries / 4;
      }
      const size_t keep = opts.dormant_tail_entries;
      if (store_.size() >= keep + quantum) {
        FreezeQuantum(store_.size() - keep, opts.block_entries,
                      opts.value_tier, compress);
      }
      return;
    }
    // Untracked non-dormant lists: legacy behavior — large hot tail,
    // compressed whole blocks.
    while (store_.size() >= opts.hot_tail_entries + opts.block_entries) {
      FreezeFront(opts.block_entries, opts.value_tier, /*compress=*/true);
    }
  }

  size_t frozen_blocks() const { return frozen_.size(); }
  size_t frozen_live_entries() const { return frozen_live_; }

  // ---- iteration ----

  // Block-cursor walks over the logical range [begin, end): fn(span) is
  // invoked once per physically contiguous run — newest-to-oldest or
  // oldest-to-newest — covering the hot tail's (≤2) segments directly
  // and each intersecting frozen block decompressed into `scratch`.
  // Entries inside every span always appear oldest→newest; the *order of
  // spans* carries the direction, exactly like the two-segment walks the
  // untiered list produced — so per-candidate FP accumulation order, and
  // with it the determinism contract, is unchanged. Span pointers into
  // `scratch` die when the next block is thawed: consume each span
  // before returning from fn. Do not mutate the list from the callback.
  template <typename Fn>
  void ForSpansNewestFirst(size_t begin, size_t end, FrozenColumns* scratch,
                           Fn&& fn) const {
    const size_t fl = frozen_live_;
    if (end > fl) {  // hot tail first (newest)
      PostingSpan spans[2];
      const size_t n =
          TailSpans(begin > fl ? begin - fl : 0, end - fl, spans);
      for (size_t s = n; s-- > 0;) fn(spans[s]);
    }
    if (begin < fl) {
      const size_t fend = end < fl ? end : fl;
      size_t block_end = fl;
      for (size_t b = frozen_.size(); b-- > 0 && block_end > begin;) {
        const size_t skip = b == 0 ? first_skip_ : 0;
        const size_t live = frozen_[b].count() - skip;
        const size_t block_start = block_end - live;
        if (block_start < fend) {
          EmitFrozenSpan(b, skip, block_start,
                         begin > block_start ? begin - block_start : 0,
                         fend < block_end ? fend - block_start : live,
                         scratch, fn);
        }
        block_end = block_start;
      }
    }
  }

  template <typename Fn>
  void ForSpansOldestFirst(size_t begin, size_t end, FrozenColumns* scratch,
                           Fn&& fn) const {
    const size_t fl = frozen_live_;
    if (begin < fl) {
      const size_t fend = end < fl ? end : fl;
      size_t block_start = 0;
      size_t skip = first_skip_;
      for (size_t b = 0; b < frozen_.size() && block_start < fend; ++b) {
        const size_t live = frozen_[b].count() - skip;
        const size_t block_end = block_start + live;
        if (block_end > begin) {
          EmitFrozenSpan(b, skip, block_start,
                         begin > block_start ? begin - block_start : 0,
                         fend < block_end ? fend - block_start : live,
                         scratch, fn);
        }
        block_start = block_end;
        skip = 0;
      }
    }
    if (end > fl) {
      PostingSpan spans[2];
      const size_t n =
          TailSpans(begin > fl ? begin - fl : 0, end - fl, spans);
      for (size_t s = 0; s < n; ++s) fn(spans[s]);
    }
  }

  // Applies fn(span, k) to every posting of the logical range [begin,
  // end), walking newest → oldest (the scan order of the time-sorted
  // schemes) or oldest → newest (L2AP's forward scan). The callback
  // indexes the span's columns itself, so it reads only the columns it
  // needs. Do not mutate the list from the callback. The scratch-less
  // overloads thaw into a local buffer (fine for untiered lists; pass a
  // reused scratch on hot paths).
  template <typename Fn>
  void ForEachNewestFirst(size_t begin, size_t end, FrozenColumns* scratch,
                          Fn&& fn) const {
    ForSpansNewestFirst(begin, end, scratch, [&fn](const PostingSpan& sp) {
      for (size_t k = sp.len; k-- > 0;) fn(sp, k);
    });
  }
  template <typename Fn>
  void ForEachNewestFirst(size_t begin, size_t end, Fn&& fn) const {
    FrozenColumns local;
    ForEachNewestFirst(begin, end, &local, fn);
  }
  template <typename Fn>
  void ForEachOldestFirst(size_t begin, size_t end, FrozenColumns* scratch,
                          Fn&& fn) const {
    ForSpansOldestFirst(begin, end, scratch, [&fn](const PostingSpan& sp) {
      for (size_t k = 0; k < sp.len; ++k) fn(sp, k);
    });
  }
  template <typename Fn>
  void ForEachOldestFirst(size_t begin, size_t end, Fn&& fn) const {
    FrozenColumns local;
    ForEachOldestFirst(begin, end, &local, fn);
  }

  // Maps the logical range [begin, end) — which must lie entirely in the
  // hot tail (begin >= frozen_live_entries(); trivially true for
  // untiered lists) — onto at most two contiguous per-column pointer
  // runs. Returns the number of spans written. Ranges that may reach the
  // frozen tier must use the ForSpans* walks instead.
  size_t Spans(size_t begin, size_t end, PostingSpan out[2]) const {
    assert(begin >= frozen_live_);
    return TailSpans(begin - frozen_live_, end - frozen_live_, out);
  }

  // ---- expiry ----

  // First logical index with ts >= cutoff — the number of expired entries
  // — found by binary search. Valid ONLY while the list is time-sorted
  // (INV/L2; never re-indexed), where ts is non-decreasing front to back.
  // The oldest entry is probed first so the common no-expiry case costs a
  // single predictable branch instead of a full search. Frozen blocks are
  // skipped whole by their max-ts header; only the boundary block's ts
  // stream is decoded.
  size_t LowerBoundTs(Timestamp cutoff) const {
    if (frozen_live_ == 0) {
      if (store_.empty() || store_.Get<3>(0) >= cutoff) return 0;
      return LowerBoundTsSlow(cutoff);
    }
    return LowerBoundTsTiered(cutoff);
  }

  // Drops the `n` oldest entries (expiry truncation, time-sorted lists
  // only). Returns n for convenience. Wholly expired frozen blocks are
  // dropped without touching their bytes; a partially expired boundary
  // block just advances the list's skip offset.
  size_t TruncateFront(size_t n);

  // Removes every entry with ts < cutoff, preserving order (forward
  // compaction, used by L2AP whose lists are not time-sorted). Returns
  // the number of removed entries. Frozen blocks whose max_ts is older
  // than the cutoff are dropped whole; straddling blocks are thawed
  // (into `scratch` when given), filtered, and re-frozen at their own
  // tier.
  size_t CompactExpired(Timestamp cutoff, FrozenColumns* scratch = nullptr);

  void Clear() {
    store_.Clear();
    frozen_.clear();
    first_skip_ = 0;
    frozen_live_ = 0;
    appends_since_scan_ = 0;
    scan_gap_ewma_ = 0;
    last_scan_tick_ = 0;
  }

  // True per-column footprint of the mutable tail's backing store, in
  // bytes (the pre-tiering meaning, kept for the buffer-level tests).
  size_t capacity_bytes() const { return store_.capacity_bytes(); }

  // Full allocated footprint: the list object itself (classifier state,
  // buffer headers), mutable-tail capacity, compressed frozen blocks, and
  // per-block bookkeeping. What the index-level MemoryBytes() accounting
  // sums — strictly larger than capacity_bytes(), never payload-only.
  size_t memory_bytes() const {
    size_t bytes = sizeof(PostingList) + store_.capacity_bytes() +
                   frozen_.capacity() * sizeof(FrozenBlock);
    for (const FrozenBlock& blk : frozen_) {
      bytes += blk.memory_bytes() - sizeof(FrozenBlock);  // payload only
    }
    return bytes;
  }

 private:
  using ColumnStore = ColumnarBuffer<VectorId, double, double, Timestamp>;

  size_t LowerBoundTsSlow(Timestamp cutoff) const;  // tail-relative
  size_t LowerBoundTsTiered(Timestamp cutoff) const;
  PostingEntry FrozenGet(size_t i) const;
  void FreezeFront(size_t n, ValueTier tier, bool compress);
  // Rewrites the front block without its consumed (first_skip_) prefix,
  // reclaiming the dead bytes. Requires a non-empty frozen_ and
  // first_skip_ > 0.
  void CompactFrontBlock();
  void FreezeQuantum(size_t n, size_t block_entries, ValueTier tier,
                     bool compress);
  size_t CompactExpiredTail(Timestamp cutoff);

  // Tail-relative span mapping; out[s].begin is reported in full logical
  // coordinates (offset by the frozen live count).
  size_t TailSpans(size_t begin, size_t end, PostingSpan out[2]) const {
    ColumnStore::Segment segs[2];
    const size_t n = store_.Segments(begin, end, segs);
    for (size_t s = 0; s < n; ++s) {
      out[s].id = store_.ColumnData<0>() + segs[s].phys;
      out[s].value = store_.ColumnData<1>() + segs[s].phys;
      out[s].prefix_norm = store_.ColumnData<2>() + segs[s].phys;
      out[s].ts = store_.ColumnData<3>() + segs[s].phys;
      out[s].begin = segs[s].begin + frozen_live_;
      out[s].len = segs[s].len;
    }
    return n;
  }

  // Emits block b's [lo, hi) live sub-range (block-local, after `skip`)
  // as one span at logical `block_start`. Raw blocks are served
  // zero-copy straight from their columns; compressed blocks thaw into
  // scratch first.
  template <typename Fn>
  void EmitFrozenSpan(size_t b, size_t skip, size_t block_start, size_t lo,
                      size_t hi, FrozenColumns* scratch, Fn&& fn) const {
    if (hi <= lo) return;
    const FrozenBlock& blk = frozen_[b];
    PostingSpan sp;
    if (!blk.compressed()) {
      sp.id = blk.raw_id() + skip + lo;
      sp.value = blk.raw_value() + skip + lo;
      sp.ts = blk.raw_ts() + skip + lo;
      const double* pn = blk.raw_prefix_norm();
      if (pn == nullptr) {
        // Elided all-zero column: the span contract promises readable
        // pointers, so serve the scratch's always-zero buffer (grow-only
        // — no per-scan memset).
        if (scratch->zeros.size() < hi - lo) {
          scratch->zeros.resize(hi - lo, 0.0);
        }
        sp.prefix_norm = scratch->zeros.data();
      } else {
        sp.prefix_norm = pn + skip + lo;
      }
    } else {
      // Exact-tier blocks whose value column fell back to raw fp64 serve
      // it straight from the compressed buffer; only id/ts need decode.
      const double* inline_vals = blk.inline_exact_values();
      blk.Thaw(scratch, /*fill_elided_prefix_norm=*/false,
               /*skip_value=*/inline_vals != nullptr);
      sp.id = scratch->id.data() + skip + lo;
      sp.value = (inline_vals != nullptr ? inline_vals
                                         : scratch->value.data()) +
                 skip + lo;
      sp.ts = scratch->ts.data() + skip + lo;
      if (blk.has_prefix_norm()) {
        sp.prefix_norm = scratch->prefix_norm.data() + skip + lo;
      } else {
        if (scratch->zeros.size() < hi - lo) {
          scratch->zeros.resize(hi - lo, 0.0);
        }
        sp.prefix_norm = scratch->zeros.data();
      }
    }
    sp.begin = block_start + lo;
    sp.len = hi - lo;
    fn(sp);
  }

  ColumnStore store_;               // hot mutable tail
  std::vector<FrozenBlock> frozen_; // cold tier, oldest block first
  size_t first_skip_ = 0;           // expired entries at frozen_[0]'s front
  size_t frozen_live_ = 0;          // live entries across all frozen blocks
  uint32_t appends_since_scan_ = 0; // dormancy classifier state
  uint32_t scan_gap_ewma_ = 0;      // EWMA arrivals between scans (ticked)
  uint64_t last_scan_tick_ = 0;     // arrival counter at the last scan
};

// Append-only SoA posting storage for the batch (MB) indexes: the same
// four columns as PostingList without the circular machinery — a window
// index is built once, queried, and cleared, so nothing is ever removed
// from the front. The probe loops read whole contiguous columns, which is
// what lets the scoring kernels (index/kernels.h) batch the per-entry
// products.
class BatchPostingList {
 public:
  size_t size() const { return id_.size(); }
  bool empty() const { return id_.empty(); }

  void Append(VectorId id, double value, double prefix_norm, Timestamp ts) {
    id_.push_back(id);
    value_.push_back(value);
    prefix_norm_.push_back(prefix_norm);
    ts_.push_back(ts);
  }

  const VectorId* id() const { return id_.data(); }
  const double* value() const { return value_.data(); }
  const double* prefix_norm() const { return prefix_norm_.data(); }
  const Timestamp* ts() const { return ts_.data(); }

  void Clear() {
    id_.clear();
    value_.clear();
    prefix_norm_.clear();
    ts_.clear();
  }

  // True per-column footprint of the backing vectors, in bytes.
  size_t capacity_bytes() const {
    return id_.capacity() * sizeof(VectorId) +
           value_.capacity() * sizeof(double) +
           prefix_norm_.capacity() * sizeof(double) +
           ts_.capacity() * sizeof(Timestamp);
  }

 private:
  std::vector<VectorId> id_;
  std::vector<double> value_;
  std::vector<double> prefix_norm_;
  std::vector<Timestamp> ts_;
};

// Allocated footprint of an unordered_map<DimId, PostingList> posting
// container, including what the per-payload `capacity_bytes` view used
// to miss: the PostingList object headers inside the map nodes, the
// node-overhead of the chaining hash map (hash link + bucket chain
// pointer per node, approximated at two pointers), and the bucket
// array. Shared by every stream index's MemoryBytes() so the mem(MB)
// bench column — the signal the tiering budget acts on — reports
// capacity, not payload.
template <typename Map>
size_t PostingMapMemoryBytes(const Map& lists) {
  size_t bytes = lists.bucket_count() * sizeof(void*);
  for (const auto& [dim, list] : lists) {
    // memory_bytes() already covers the PostingList object itself; add
    // only the key (with pair padding) and the node-link overhead here.
    bytes += sizeof(typename Map::value_type) - sizeof(PostingList) +
             2 * sizeof(void*);
    bytes += list.memory_bytes();
  }
  return bytes;
}

}  // namespace sssj

#endif  // SSSJ_INDEX_POSTING_LIST_H_
