// Posting list backed by a structure-of-arrays column store (paper §6.2
// implements posting lists as circular byte buffers; here each field is
// its own circular column so scans only stream the columns they read).
//
// Entries are appended in arrival order. For the INV and L2 schemes the
// lists therefore stay sorted by timestamp, which enables two
// optimizations used by the hot scan loops:
//   * the expiry boundary is found by binary search on the `ts` column
//     (LowerBoundTs) instead of per-entry checks, and everything older is
//     truncated in O(log n + shrink);
//   * candidate generation walks raw per-column pointers (Spans), reading
//     only `id`/`ts` densely and touching `value`/`prefix_norm` lazily.
// The L2AP scheme loses the sorted property (re-indexing appends old
// items) and must scan forward, compacting expired entries in place
// (CompactExpired works column-wise and never assumes time order).
#ifndef SSSJ_INDEX_POSTING_LIST_H_
#define SSSJ_INDEX_POSTING_LIST_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "util/columnar_buffer.h"

namespace sssj {

// One posting: vector reference, coordinate value, prefix magnitude
// ||y'_j|| (the L2AP/L2 addition; unused by INV), and arrival timestamp.
// The batch indexes store rows of this struct directly; PostingList
// decomposes it into four parallel columns.
struct PostingEntry {
  VectorId id = 0;
  double value = 0.0;
  double prefix_norm = 0.0;
  Timestamp ts = 0.0;
};

// A physically contiguous run of postings: one raw pointer per column,
// all indexed by the same [0, len) offset. `begin` is the logical index
// (from the oldest entry) of the run's first posting. Pointers are
// invalidated by any mutation of the list.
struct PostingSpan {
  const VectorId* id = nullptr;
  const double* value = nullptr;
  const double* prefix_norm = nullptr;
  const Timestamp* ts = nullptr;
  size_t begin = 0;
  size_t len = 0;
};

class PostingList {
 public:
  size_t size() const { return store_.size(); }
  bool empty() const { return store_.empty(); }

  // Per-column element access, logical index from the front (oldest).
  VectorId id(size_t i) const { return store_.Get<0>(i); }
  double value(size_t i) const { return store_.Get<1>(i); }
  double prefix_norm(size_t i) const { return store_.Get<2>(i); }
  Timestamp ts(size_t i) const { return store_.Get<3>(i); }

  // Materializes one posting as a row (tests / serialization convenience;
  // hot loops should use Spans instead).
  PostingEntry Get(size_t i) const {
    return PostingEntry{id(i), value(i), prefix_norm(i), ts(i)};
  }

  void Append(VectorId id, double value, double prefix_norm, Timestamp ts) {
    store_.PushBack(id, value, prefix_norm, ts);
  }
  void Append(const PostingEntry& e) {
    Append(e.id, e.value, e.prefix_norm, e.ts);
  }

  // Applies fn(span, k) to every posting of the logical range [begin,
  // end), walking newest → oldest (the scan order of the time-sorted
  // schemes) or oldest → newest (L2AP's forward scan). The callback
  // indexes the span's columns itself, so it reads only the columns it
  // needs. Do not mutate the list from the callback.
  template <typename Fn>
  void ForEachNewestFirst(size_t begin, size_t end, Fn&& fn) const {
    PostingSpan spans[2];
    const size_t n = Spans(begin, end, spans);
    for (size_t s = n; s-- > 0;) {
      const PostingSpan& sp = spans[s];
      for (size_t k = sp.len; k-- > 0;) fn(sp, k);
    }
  }
  template <typename Fn>
  void ForEachOldestFirst(size_t begin, size_t end, Fn&& fn) const {
    PostingSpan spans[2];
    const size_t n = Spans(begin, end, spans);
    for (size_t s = 0; s < n; ++s) {
      const PostingSpan& sp = spans[s];
      for (size_t k = 0; k < sp.len; ++k) fn(sp, k);
    }
  }

  // Maps the logical range [begin, end) onto at most two contiguous
  // per-column pointer runs. Returns the number of spans written.
  size_t Spans(size_t begin, size_t end, PostingSpan out[2]) const {
    ColumnStore::Segment segs[2];
    const size_t n = store_.Segments(begin, end, segs);
    for (size_t s = 0; s < n; ++s) {
      out[s].id = store_.ColumnData<0>() + segs[s].phys;
      out[s].value = store_.ColumnData<1>() + segs[s].phys;
      out[s].prefix_norm = store_.ColumnData<2>() + segs[s].phys;
      out[s].ts = store_.ColumnData<3>() + segs[s].phys;
      out[s].begin = segs[s].begin;
      out[s].len = segs[s].len;
    }
    return n;
  }

  // First logical index with ts >= cutoff — the number of expired entries
  // — found by binary search. Valid ONLY while the list is time-sorted
  // (INV/L2; never re-indexed), where ts is non-decreasing front to back.
  // The oldest entry is probed first so the common no-expiry case costs a
  // single predictable branch instead of a full search.
  size_t LowerBoundTs(Timestamp cutoff) const {
    if (store_.empty() || store_.Get<3>(0) >= cutoff) return 0;
    return LowerBoundTsSlow(cutoff);
  }

  // Drops the `n` oldest entries (expiry truncation, time-sorted lists
  // only). Returns n for convenience.
  size_t TruncateFront(size_t n) {
    store_.TruncateFront(n);
    return n;
  }

  // Removes every entry with ts < cutoff, preserving order (forward
  // compaction, used by L2AP whose lists are not time-sorted).
  // Returns the number of removed entries.
  size_t CompactExpired(Timestamp cutoff);

  void Clear() { store_.Clear(); }

  // True per-column footprint of the backing store, in bytes.
  size_t capacity_bytes() const { return store_.capacity_bytes(); }

 private:
  size_t LowerBoundTsSlow(Timestamp cutoff) const;

  using ColumnStore = ColumnarBuffer<VectorId, double, double, Timestamp>;
  ColumnStore store_;
};

// Append-only SoA posting storage for the batch (MB) indexes: the same
// four columns as PostingList without the circular machinery — a window
// index is built once, queried, and cleared, so nothing is ever removed
// from the front. The probe loops read whole contiguous columns, which is
// what lets the scoring kernels (index/kernels.h) batch the per-entry
// products.
class BatchPostingList {
 public:
  size_t size() const { return id_.size(); }
  bool empty() const { return id_.empty(); }

  void Append(VectorId id, double value, double prefix_norm, Timestamp ts) {
    id_.push_back(id);
    value_.push_back(value);
    prefix_norm_.push_back(prefix_norm);
    ts_.push_back(ts);
  }

  const VectorId* id() const { return id_.data(); }
  const double* value() const { return value_.data(); }
  const double* prefix_norm() const { return prefix_norm_.data(); }
  const Timestamp* ts() const { return ts_.data(); }

  void Clear() {
    id_.clear();
    value_.clear();
    prefix_norm_.clear();
    ts_.clear();
  }

  // True per-column footprint of the backing vectors, in bytes.
  size_t capacity_bytes() const {
    return id_.capacity() * sizeof(VectorId) +
           value_.capacity() * sizeof(double) +
           prefix_norm_.capacity() * sizeof(double) +
           ts_.capacity() * sizeof(Timestamp);
  }

 private:
  std::vector<VectorId> id_;
  std::vector<double> value_;
  std::vector<double> prefix_norm_;
  std::vector<Timestamp> ts_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_POSTING_LIST_H_
