// Residual direct index R, the Q array, and per-vector metadata (§4, §6.2).
//
// For every (partially) indexed vector y the filtering framework needs:
//   * the un-indexed prefix y' (for the exact dot in candidate
//     verification),
//   * Q[y] = pscore — the upper bound on dot(z, y') for any z, stored at
//     index-construction time (Algorithm 2 line 15),
//   * the full-vector statistics |y|, vm_y, Σ_y used by the AP size and
//     dot-product bounds, and needed again during L2AP re-indexing.
//
// The paper implements R and Q with a linked hash-map so that entries can
// be expired in time order with amortized O(1) cost (§6.2); we do the same.
//
// For the streaming L2AP index the store also maintains a small inverted
// index over the *prefix* dimensions, so that a max-vector update in
// dimension j can locate exactly the residuals that may need re-indexing
// (§5.3 "we can keep an inverted index of R to avoid scanning every
// vector"). Entries in that inverted index are cleaned lazily.
#ifndef SSSJ_INDEX_RESIDUAL_STORE_H_
#define SSSJ_INDEX_RESIDUAL_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/sparse_vector.h"
#include "core/types.h"
#include "util/linked_hash_map.h"

namespace sssj {

struct ResidualRecord {
  SparseVector prefix;  // y' — un-indexed prefix (may be empty)
  double q = 0.0;       // Q[y]
  Timestamp ts = 0.0;   // arrival time of y
  // Full-vector stats (not prefix stats):
  double vm = 0.0;   // vm_y
  double sum = 0.0;  // Σ_y
  uint32_t nnz = 0;  // |y|
};

class ResidualStore {
 public:
  // `track_prefix_dims` enables the prefix inverted index (STR-L2AP only).
  explicit ResidualStore(bool track_prefix_dims = false)
      : track_prefix_dims_(track_prefix_dims) {}

  // Inserts a record; `id`s must arrive in non-decreasing `rec.ts` order.
  // Returns the stored record.
  ResidualRecord& Insert(VectorId id, ResidualRecord rec);

  ResidualRecord* Find(VectorId id) { return map_.find(id); }
  const ResidualRecord* Find(VectorId id) const { return map_.find(id); }

  // Drops all records with ts < cutoff (amortized O(1) per drop).
  void ExpireOlderThan(Timestamp cutoff);

  // Iterates over the ids whose stored prefix (still) contains `dim`,
  // compacting stale entries along the way. Fn: void(VectorId,
  // ResidualRecord&). Requires track_prefix_dims.
  template <typename Fn>
  void ForEachWithPrefixDim(DimId dim, Fn&& fn) {
    auto it = prefix_dims_.find(dim);
    if (it == prefix_dims_.end()) return;
    std::vector<VectorId>& ids = it->second;
    size_t w = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
      ResidualRecord* rec = map_.find(ids[i]);
      if (rec == nullptr || rec->prefix.ValueAt(dim) == 0.0) continue;  // stale
      ids[w++] = ids[i];
      fn(ids[i], *rec);
    }
    ids.resize(w);
    if (ids.empty()) prefix_dims_.erase(it);
  }

  // Re-registers prefix dims after a record's prefix shrank (re-indexing).
  // Only dims still present in the new prefix remain discoverable; stale
  // entries are cleaned lazily by ForEachWithPrefixDim.
  void NotePrefixShrunk(VectorId) {}  // nothing to do: cleanup is lazy

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear();

  // Approximate resident bytes (records + stored prefix coordinates +
  // prefix-dim inverted index). O(records); intended for periodic
  // sampling, not per-arrival calls.
  size_t ApproxBytes() const;

  // Iterates records in insertion (time) order. Fn: void(VectorId,
  // const ResidualRecord&). Used by checkpointing, which must preserve
  // the order for O(1) expiry after restore.
  template <typename Fn>
  void ForEachInOrder(Fn&& fn) const {
    for (const auto& [id, rec] : map_) fn(id, rec);
  }

 private:
  void RegisterPrefixDims(VectorId id, const SparseVector& prefix);

  LinkedHashMap<VectorId, ResidualRecord> map_;
  std::unordered_map<DimId, std::vector<VectorId>> prefix_dims_;
  bool track_prefix_dims_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_RESIDUAL_STORE_H_
