#include "index/prefix_index.h"

#include <algorithm>
#include <cmath>

#include "index/kernels.h"

namespace sssj {

template <typename Policy>
void PrefixIndex<Policy>::Construct(const Stream& window,
                                    const MaxVector& global_max,
                                    std::vector<ResultPair>* pairs) {
  m_ = global_max;
  scratch_.stats = RunStats{};
  for (const StreamItem& x : window) {
    QueryInternal(x, &scratch_, pairs);
    AddInternal(x);
  }
  stats_ += scratch_.stats;
  ++stats_.index_rebuilds;
}

template <typename Policy>
void PrefixIndex<Policy>::Query(const StreamItem& x,
                                BatchQueryScratch* scratch,
                                std::vector<ResultPair>* pairs) const {
  QueryInternal(x, scratch, pairs);
}

template <typename Policy>
void PrefixIndex<Policy>::Clear() {
  lists_.clear();
  residuals_.Clear();
  m_.Clear();
  mhat_.Clear();
}

template <typename Policy>
size_t PrefixIndex<Policy>::IndexedEntries() const {
  size_t n = 0;
  for (const auto& [dim, list] : lists_) n += list.size();
  return n;
}

template <typename Policy>
size_t PrefixIndex<Policy>::MemoryBytes() const {
  size_t bytes = residuals_.ApproxBytes();
  for (const auto& [dim, list] : lists_) {
    bytes += sizeof(DimId) + list.capacity_bytes();
  }
  bytes += (m_.size() + mhat_.size()) * (sizeof(DimId) + sizeof(double));
  return bytes;
}

// CandGen (Algorithm 3) + CandVer (Algorithm 4), no time decay. Reads only
// immutable index state (lists_, residuals_, m_, mhat_); every mutable
// piece lives in *scratch, so concurrent calls with distinct scratches are
// safe (the MB window fan-out relies on this).
template <typename Policy>
void PrefixIndex<Policy>::QueryInternal(const StreamItem& x,
                                        BatchQueryScratch* scratch,
                                        std::vector<ResultPair>* pairs) const {
  const SparseVector& v = x.vec;
  if (v.empty()) return;
  CandidateMap& cands = scratch->cands;
  std::vector<double>& prefix_norms = scratch->prefix_norms;
  RunStats& stats = scratch->stats;
  cands.Reset();

  // Prefix magnitudes ||x'_j||: norm of coordinates strictly before
  // position i.
  const size_t n = v.nnz();
  prefix_norms.assign(n, 0.0);
  {
    double sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      prefix_norms[i] = std::sqrt(sq);
      sq += v.coord(i).value * v.coord(i).value;
    }
  }

  // sz1 = θ / vm_x: minimum "weight capacity" |y|·vm_y of a viable y.
  const double sz1 = Policy::kAp ? theta_ / v.max_value() : 0.0;
  double rs1 = Policy::kAp ? mhat_.Dot(v) : 0.0;
  double rst = v.norm() * v.norm();

  for (size_t i = n; i-- > 0;) {  // reverse coordinate order
    const Coord& c = v.coord(i);
    const double rs2 = std::sqrt(std::max(rst, 0.0));
    auto it = lists_.find(c.dim);
    if (it != lists_.end()) {
      double remscore = rs2;
      if constexpr (Policy::kAp) {
        remscore = Policy::kL2 ? std::min(rs1, rs2) : rs1;
      }
      const bool admit_more = BoundAtLeast(remscore, theta_);
      const BatchPostingList& list = it->second;
      const size_t len = list.size();
      const VectorId* ids = list.id();
      const double* vals = list.value();
      const double* pns = list.prefix_norm();
      const Timestamp* tss = list.ts();
      // SIMD path: batch the per-entry products over the whole column
      // (bit-identical to the scalar multiplies). Entries the AP size
      // filter later skips get a product they never read — the usual
      // compute-for-bandwidth trade — and the scalar default avoids it.
      const double* contrib = nullptr;
      const double* pnprod = nullptr;
      if (use_simd_ && len >= kernels::kMinSimdRun) {
        if (scratch->contrib.size() < len) scratch->contrib.resize(len);
        kernels::ProductColumn(vals, len, c.value, scratch->contrib.data());
        contrib = scratch->contrib.data();
        if constexpr (Policy::kL2) {
          if (scratch->pnprod.size() < len) scratch->pnprod.resize(len);
          kernels::ProductColumn(pns, len, prefix_norms[i],
                                 scratch->pnprod.data());
          pnprod = scratch->pnprod.data();
        }
      }
      for (size_t k = 0; k < len; ++k) {
        ++stats.entries_traversed;
        if constexpr (Policy::kAp) {
          // Size filter: |y|·vm_y ≥ sz1 is necessary for dot(x,y) ≥ θ.
          const ResidualRecord* rec = residuals_.Find(ids[k]);
          if (rec == nullptr || !BoundAtLeast(rec->nnz * rec->vm, sz1)) {
            continue;
          }
        }
        CandidateMap::Slot* slot = cands.FindOrCreate(ids[k]);
        if (slot->score < 0.0) continue;  // l2-pruned earlier: final
        if (slot->score == 0.0) {
          if (!admit_more) continue;
          slot->ts = tss[k];
          cands.NoteAdmitted();
          ++stats.candidates_generated;
        }
        slot->score += contrib != nullptr ? contrib[k] : c.value * vals[k];
        if constexpr (Policy::kL2) {
          const double l2bound =
              slot->score +
              (pnprod != nullptr ? pnprod[k] : prefix_norms[i] * pns[k]);
          if (!BoundAtLeast(l2bound, theta_)) {
            slot->score = CandidateMap::kPruned;
            ++stats.l2_prunes;
          }
        }
      }
    }
    if constexpr (Policy::kAp) rs1 -= c.value * mhat_.Get(c.dim);
    rst -= c.value * c.value;
  }

  // CandVer.
  cands.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats.verify_calls;
    const ResidualRecord* rec = residuals_.Find(id);
    if (rec == nullptr) return;  // defensive; every indexed y has a record
    const double ps1 = score + rec->q;
    if (!BoundAtLeast(ps1, theta_)) return;
    if constexpr (Policy::kAp) {
      const SparseVector& yp = rec->prefix;
      const double ds1 =
          score + std::min(v.max_value() * yp.sum(), yp.max_value() * v.sum());
      if (!BoundAtLeast(ds1, theta_)) return;
      const double sz2 =
          score + static_cast<double>(std::min(v.nnz(), yp.nnz())) *
                      v.max_value() * yp.max_value();
      if (!BoundAtLeast(sz2, theta_)) return;
    }
    ++stats.full_dots;
    const double s = score + kernels::SparseDot(v, rec->prefix, use_simd_);
    if (s >= theta_) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = s;
      p.sim = s;
      pairs->push_back(p);
      ++stats.pairs_emitted;
    }
  });
}

// IndConstr (Algorithm 2).
template <typename Policy>
void PrefixIndex<Policy>::AddInternal(const StreamItem& x) {
  const SparseVector& v = x.vec;
  ++stats_.vectors_processed;
  if (v.empty()) return;

  double b1 = 0.0;
  double bt = 0.0;
  bool first_indexed = true;
  double running_sq = 0.0;  // for ||x'_j|| stored in posting entries

  // m̂ must dominate *every* coordinate of every vector in the index —
  // including un-indexed residual prefixes — because the rs1 admission
  // bound in CandGen covers residual contributions in the scanned dims
  // (§3: "m̂ refers to the vector m restricted to the dataset that is
  // already indexed", i.e. restricted by vector, not by coordinate).
  if constexpr (Policy::kAp) {
    mhat_.UpdateFrom(v, nullptr);
  }

  for (size_t i = 0; i < v.nnz(); ++i) {
    const Coord& c = v.coord(i);
    const double pn = std::sqrt(running_sq);  // ||x'_j|| before this coord
    double pscore;  // bound BEFORE adding coord i (Algorithm 2 line 9)
    if constexpr (Policy::kAp && Policy::kL2) {
      pscore = std::min(b1, std::sqrt(bt));
    } else if constexpr (Policy::kAp) {
      pscore = b1;
    } else {
      pscore = std::sqrt(bt);
    }

    if constexpr (Policy::kAp) {
      // The paper (Algorithm 2 line 10) caps m_j at vm_x, inheriting
      // Bayardo's bound. That cap is only sound when vectors are processed
      // in decreasing max-weight order — false for time-ordered streams
      // and for cross-window MB queries — and can cause false negatives
      // (see DESIGN.md deviation 6 and the VmCapCounterexample test). We
      // therefore use the uncapped, unconditionally safe form.
      b1 += c.value * m_.Get(c.dim);
    }
    bt += c.value * c.value;
    running_sq = bt;

    double bound;
    if constexpr (Policy::kAp && Policy::kL2) {
      bound = std::min(b1, std::sqrt(bt));
    } else if constexpr (Policy::kAp) {
      bound = b1;
    } else {
      bound = std::sqrt(bt);
    }

    if (BoundAtLeast(bound, theta_)) {
      if (first_indexed) {
        ResidualRecord rec;
        rec.prefix = v.Prefix(i);
        rec.q = pscore;
        rec.ts = x.ts;
        rec.vm = v.max_value();
        rec.sum = v.sum();
        rec.nnz = static_cast<uint32_t>(v.nnz());
        residuals_.Insert(x.id, std::move(rec));
        first_indexed = false;
      }
      lists_[c.dim].Append(x.id, c.value, pn, x.ts);
      ++stats_.entries_indexed;
    }
  }
  // With a valid global max vector, min{b1, b2} reaches ||x|| = 1 ≥ θ by
  // the last coordinate, so every vector is indexed at least once. If the
  // caller violated the MaxVector precondition this does not hold, and
  // recall is undefined (documented in batch_index.h).
}

template class PrefixIndex<ApPolicy>;
template class PrefixIndex<L2apPolicy>;
template class PrefixIndex<L2Policy>;

}  // namespace sssj
