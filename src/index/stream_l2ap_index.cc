#include "index/stream_l2ap_index.h"

#include <algorithm>
#include <cmath>

namespace sssj {

void StreamL2apIndex::ProcessArrival(const StreamItem& x, ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  // ---- Max-vector maintenance + re-indexing (must precede CG) ----
  updated_dims_.clear();
  m_.UpdateFrom(v, &updated_dims_);
  if (!updated_dims_.empty()) Reindex(updated_dims_, cutoff);

  // ---- Candidate generation (Algorithm 7, all lines) ----
  cands_.Reset();
  const size_t n = v.nnz();
  prefix_norms_.assign(n, 0.0);
  {
    double sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      prefix_norms_[i] = std::sqrt(sq);
      sq += v.coord(i).value * v.coord(i).value;
    }
  }

  const double sz1 = params_.theta / v.max_value();
  double rs1 = mhat_.Dot(v, x.ts);
  double rst = v.norm() * v.norm();

  for (size_t i = n; i-- > 0;) {  // reverse coordinate order
    const Coord& c = v.coord(i);
    const double rs2 = std::sqrt(std::max(rst, 0.0));
    auto it = lists_.find(c.dim);
    if (it != lists_.end()) {
      PostingList& list = it->second;
      list.NoteScanned(stats_.vectors_processed);  // scan-rate classifier
      // Lists are not time-sorted (re-indexing): compact expired entries
      // column-wise, then scan forward — hot-tail segments directly,
      // frozen blocks thawed one at a time into the kernel scratch
      // (§6.2).
      NotePruned(list.CompactExpired(cutoff, &kernel_.posting));
      list.ForSpansOldestFirst(0, list.size(), &kernel_.posting,
                               [&](const PostingSpan& sp) {
        // SIMD path: one vectorized exp pass over the span's ts column;
        // scalar path keeps the per-entry std::exp.
        const double* decay_col =
            kernel_.DecayForSpan(sp, x.ts, params_.lambda);
        for (size_t k = 0; k < sp.len; ++k) {  // oldest entry first
          ++stats_.entries_traversed;
          const Timestamp ets = sp.ts[k];
          const double decay =
              decay_col != nullptr
                  ? decay_col[k]
                  : std::exp(-params_.lambda * (x.ts - ets));
          CandidateMap::Slot* slot = cands_.FindOrCreate(sp.id[k]);
          if (slot->score < 0.0) continue;  // l2-pruned: final
          if (slot->score == 0.0) {
            const double remscore =
                use_l2_bounds_ ? std::min(rs1, rs2 * decay) : rs1;
            if (!BoundAtLeast(remscore, params_.theta)) continue;
            // AP size filter: |y|·vm_y ≥ θ/vm_x is necessary for
            // similarity.
            const ResidualRecord* rec = residuals_.Find(sp.id[k]);
            if (rec == nullptr || !BoundAtLeast(rec->nnz * rec->vm, sz1)) {
              continue;
            }
            slot->ts = ets;
            cands_.NoteAdmitted();
            ++stats_.candidates_generated;
          }
          slot->score += c.value * sp.value[k];
          if (use_l2_bounds_) {
            const double l2bound =
                slot->score + prefix_norms_[i] * sp.prefix_norm[k] * decay;
            if (!BoundAtLeast(l2bound, params_.theta)) {
              slot->score = CandidateMap::kPruned;
              ++stats_.l2_prunes;
            }
          }
        }
      });
    }
    rs1 -= c.value * mhat_.Get(c.dim, x.ts);
    rst -= c.value * c.value;
  }

  // ---- Candidate verification (Algorithm 8, all lines) ----
  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    const ResidualRecord* rec = residuals_.Find(id);
    if (rec == nullptr) return;
    const double decay = std::exp(-params_.lambda * (x.ts - ts));
    const double ps1 = (score + rec->q) * decay;
    if (!BoundAtLeast(ps1, params_.theta)) return;
    const SparseVector& yp = rec->prefix;
    const double ds1 =
        (score +
         std::min(v.max_value() * yp.sum(), yp.max_value() * v.sum())) *
        decay;
    if (!BoundAtLeast(ds1, params_.theta)) return;
    const double sz2 =
        (score + static_cast<double>(std::min(v.nnz(), yp.nnz())) *
                     v.max_value() * yp.max_value()) *
        decay;
    if (!BoundAtLeast(sz2, params_.theta)) return;
    ++stats_.full_dots;
    const double s = score + kernels::SparseDot(v, yp, kernel_.use_simd);
    const double sim = s * decay;
    if (sim >= params_.theta) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = s;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  });

  // ---- Index construction (Algorithm 6, all lines) ----
  // Decay is never applied during IC (§6.2): b1 uses the undecayed m.
  double b1 = 0.0;
  double bt = 0.0;
  bool first_indexed = true;
  size_t appended = 0;
  // m̂λ is defined over *all* coordinates of all past vectors (§5.3), not
  // just the indexed ones: the rs1 admission bound must also cover a
  // candidate's residual contribution in the scanned dimensions.
  for (const Coord& c : v) mhat_.Update(c.dim, c.value, x.ts);
  for (size_t i = 0; i < n; ++i) {
    const Coord& c = v.coord(i);
    const double pscore =
        use_l2_bounds_ ? std::min(b1, std::sqrt(bt)) : b1;
    // Uncapped b1 (no min with vm_x): the paper's cap requires Bayardo's
    // decreasing-max-weight processing order, which a time-ordered stream
    // violates — see DESIGN.md deviation 6.
    b1 += c.value * m_.Get(c.dim);
    bt += c.value * c.value;
    const double bound = use_l2_bounds_ ? std::min(b1, std::sqrt(bt)) : b1;
    if (BoundAtLeast(bound, ic_theta_)) {
      if (first_indexed) {
        ResidualRecord rec;
        rec.prefix = v.Prefix(i);
        rec.q = pscore;
        rec.ts = x.ts;
        rec.vm = v.max_value();
        rec.sum = v.sum();
        rec.nnz = static_cast<uint32_t>(n);
        residuals_.Insert(x.id, std::move(rec));
        first_indexed = false;
      }
      PostingList& list = lists_[c.dim];
      list.Append(x.id, c.value, prefix_norms_[i], x.ts);
      list.MaybeFreeze(tiered_, stats_.vectors_processed);
      ++appended;
    }
  }
  NoteIndexed(appended);
}

void StreamL2apIndex::Reindex(const std::vector<DimId>& updated_dims,
                              Timestamp cutoff) {
  ++stats_.reindex_events;
  reindex_ids_.clear();
  for (DimId dim : updated_dims) {
    residuals_.ForEachWithPrefixDim(
        dim, [&](VectorId id, ResidualRecord& rec) {
          if (rec.ts >= cutoff) reindex_ids_.push_back(id);
        });
  }
  std::sort(reindex_ids_.begin(), reindex_ids_.end());
  reindex_ids_.erase(std::unique(reindex_ids_.begin(), reindex_ids_.end()),
                     reindex_ids_.end());
  for (VectorId id : reindex_ids_) {
    ResidualRecord* rec = residuals_.Find(id);
    if (rec != nullptr && ReindexOne(id, rec)) ++stats_.reindexed_vectors;
  }
}

bool StreamL2apIndex::ReindexOne(VectorId id, ResidualRecord* rec) {
  const SparseVector& prefix = rec->prefix;
  const size_t p = prefix.nnz();
  if (p == 0) return false;

  // Recompute the running IC bounds over the residual prefix under the
  // current m. The prefix holds the *first* coordinates of the vector, so
  // this scan is identical to re-running Algorithm 2 from the start.
  double b1 = 0.0;
  double bt = 0.0;
  size_t boundary = p;  // first newly indexable position
  double q_new = rec->q;
  for (size_t i = 0; i < p; ++i) {
    const Coord& c = prefix.coord(i);
    const double pscore =
        use_l2_bounds_ ? std::min(b1, std::sqrt(bt)) : b1;
    b1 += c.value * m_.Get(c.dim);  // uncapped; see IC comment
    bt += c.value * c.value;
    const double bound = use_l2_bounds_ ? std::min(b1, std::sqrt(bt)) : b1;
    if (BoundAtLeast(bound, ic_theta_)) {
      boundary = i;
      q_new = pscore;
      break;
    }
  }
  if (boundary == p) {
    // Boundary unchanged, but Q[y] must still be refreshed: it upper-bounds
    // dot(z, y') for queries z dominated by the *current* m, and b1 over
    // the prefix just grew. Keeping the old (smaller) Q would make the CV
    // ps1 bound under-estimate and silently drop true pairs.
    rec->q = use_l2_bounds_ ? std::min(b1, std::sqrt(bt)) : b1;
    return false;
  }

  // Move coordinates [boundary, p) into the posting lists with their
  // original timestamp (this is what makes L2AP lists lose time order).
  double sq = 0.0;
  for (size_t i = 0; i < boundary; ++i) {
    sq += prefix.coord(i).value * prefix.coord(i).value;
  }
  size_t appended = 0;
  for (size_t i = boundary; i < p; ++i) {
    const Coord& c = prefix.coord(i);
    // No m̂λ update needed: all of this vector's coordinates were folded
    // into m̂λ when it first arrived.
    PostingList& list = lists_[c.dim];
    list.Append(id, c.value, std::sqrt(sq), rec->ts);
    list.MaybeFreeze(tiered_, stats_.vectors_processed);
    sq += c.value * c.value;
    ++appended;
    ++stats_.reindexed_coords;
  }
  NoteIndexed(appended);
  rec->prefix = prefix.Prefix(boundary);
  rec->q = q_new;
  return true;
}

void StreamL2apIndex::Clear() {
  lists_.clear();
  residuals_.Clear();
  m_.Clear();
  mhat_.Clear();
  live_entries_ = 0;
}

}  // namespace sssj
