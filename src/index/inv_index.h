// Batch inverted index with no pruning (INV, §5.1). Candidate generation
// already accumulates the exact dot product, so verification is a plain
// threshold test.
#ifndef SSSJ_INDEX_INV_INDEX_H_
#define SSSJ_INDEX_INV_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/batch_index.h"
#include "index/candidate_map.h"
#include "index/posting_list.h"

namespace sssj {

class InvIndex : public BatchIndex {
 public:
  // `use_simd` batches the probe loop's contribution products through
  // kernels::ProductColumn — bit-identical output on both paths.
  explicit InvIndex(double theta, bool use_simd = false)
      : theta_(theta), use_simd_(use_simd) {}

  void Construct(const Stream& window, const MaxVector& global_max,
                 std::vector<ResultPair>* pairs) override;
  using BatchIndex::Query;
  void Query(const StreamItem& x, BatchQueryScratch* scratch,
             std::vector<ResultPair>* pairs) const override;
  void Clear() override;
  const char* name() const override { return "INV"; }
  size_t MemoryBytes() const override;

 private:
  void QueryInternal(const StreamItem& x, BatchQueryScratch* scratch,
                     std::vector<ResultPair>* pairs) const;
  void AddInternal(const StreamItem& x);

  double theta_;
  bool use_simd_;
  std::unordered_map<DimId, BatchPostingList> lists_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_INV_INDEX_H_
