// Batch inverted index with no pruning (INV, §5.1). Candidate generation
// already accumulates the exact dot product, so verification is a plain
// threshold test.
#ifndef SSSJ_INDEX_INV_INDEX_H_
#define SSSJ_INDEX_INV_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/batch_index.h"
#include "index/candidate_map.h"
#include "index/posting_list.h"

namespace sssj {

class InvIndex : public BatchIndex {
 public:
  explicit InvIndex(double theta) : theta_(theta) {}

  void Construct(const Stream& window, const MaxVector& global_max,
                 std::vector<ResultPair>* pairs) override;
  using BatchIndex::Query;
  void Query(const StreamItem& x, BatchQueryScratch* scratch,
             std::vector<ResultPair>* pairs) const override;
  void Clear() override;
  const char* name() const override { return "INV"; }
  size_t MemoryBytes() const override;

 private:
  void QueryInternal(const StreamItem& x, BatchQueryScratch* scratch,
                     std::vector<ResultPair>* pairs) const;
  void AddInternal(const StreamItem& x);

  double theta_;
  std::unordered_map<DimId, std::vector<PostingEntry>> lists_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_INV_INDEX_H_
