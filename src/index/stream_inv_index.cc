#include "index/stream_inv_index.h"

#include <cmath>

#include "index/kernels.h"

namespace sssj {

void StreamInvIndex::ProcessArrival(const StreamItem& x, ResultSink* sink) {
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;

  // Candidate generation with lazy time filtering: lists are time-sorted,
  // so the expired prefix is found by binary search on the ts column and
  // truncated in one go; the live suffix is scanned newest → oldest over
  // raw column pointers (prefix_norm is never touched by INV).
  cands_.Reset();
  for (const Coord& c : x.vec) {
    auto it = lists_.find(c.dim);
    if (it == lists_.end()) continue;
    PostingList& list = it->second;
    list.NoteScanned(stats_.vectors_processed);  // scan-rate classifier
    NotePruned(list.TruncateFront(list.LowerBoundTs(cutoff)));
    list.ForSpansNewestFirst(0, list.size(), &posting_,
                             [&](const PostingSpan& sp) {
      // INV accumulates every entry, so the value column is dense either
      // way; the SIMD path batches the products (bit-identical to the
      // per-entry multiply) and the per-entry loop keeps only the map.
      const double* contrib = nullptr;
      if (use_simd_ && sp.len >= kernels::kMinSimdRun) {
        if (contrib_.size() < sp.len) contrib_.resize(sp.len);
        kernels::ProductColumn(sp.value, sp.len, c.value, contrib_.data());
        contrib = contrib_.data();
      }
      for (size_t k = sp.len; k-- > 0;) {  // newest entry first
        ++stats_.entries_traversed;
        CandidateMap::Slot* slot = cands_.FindOrCreate(sp.id[k]);
        if (slot->score == 0.0) {
          slot->ts = sp.ts[k];
          cands_.NoteAdmitted();
          ++stats_.candidates_generated;
        }
        slot->score += contrib != nullptr ? contrib[k] : c.value * sp.value[k];
      }
    });
  }

  // Verification: the accumulated score is the exact dot product.
  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    const double sim = score * DecayFactor(params_.lambda, x.ts, ts);
    if (sim >= params_.theta) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = score;
      p.sim = sim;
      p.Canonicalize();
      sink->Emit(p);
      ++stats_.pairs_emitted;
    }
  });

  // Index construction: append everything (no prefix filtering).
  for (const Coord& c : x.vec) {
    PostingList& list = lists_[c.dim];
    list.Append(x.id, c.value, 0.0, x.ts);
    list.MaybeFreeze(tiered_, stats_.vectors_processed);
  }
  NoteIndexed(x.vec.nnz());
}

void StreamInvIndex::Clear() {
  lists_.clear();
  live_entries_ = 0;
}

}  // namespace sssj
