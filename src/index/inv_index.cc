#include "index/inv_index.h"

namespace sssj {

void InvIndex::Construct(const Stream& window, const MaxVector& /*unused*/,
                         std::vector<ResultPair>* pairs) {
  for (const StreamItem& x : window) {
    QueryInternal(x, pairs);
    AddInternal(x);
  }
  ++stats_.index_rebuilds;
}

void InvIndex::Query(const StreamItem& x, std::vector<ResultPair>* pairs) {
  QueryInternal(x, pairs);
}

void InvIndex::Clear() {
  lists_.clear();
}

void InvIndex::QueryInternal(const StreamItem& x,
                             std::vector<ResultPair>* pairs) {
  cands_.Reset();
  for (const Coord& c : x.vec) {
    auto it = lists_.find(c.dim);
    if (it == lists_.end()) continue;
    for (const PostingEntry& e : it->second) {
      ++stats_.entries_traversed;
      CandidateMap::Slot* slot = cands_.FindOrCreate(e.id);
      if (slot->score == 0.0) {
        slot->ts = e.ts;
        cands_.NoteAdmitted();
        ++stats_.candidates_generated;
      }
      slot->score += c.value * e.value;
    }
  }
  cands_.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats_.verify_calls;
    if (score >= theta_) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = score;
      p.sim = score;
      pairs->push_back(p);
      ++stats_.pairs_emitted;
    }
  });
}

void InvIndex::AddInternal(const StreamItem& x) {
  for (const Coord& c : x.vec) {
    lists_[c.dim].push_back(PostingEntry{x.id, c.value, 0.0, x.ts});
    ++stats_.entries_indexed;
  }
  ++stats_.vectors_processed;
}

}  // namespace sssj
