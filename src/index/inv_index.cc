#include "index/inv_index.h"

#include "index/kernels.h"

namespace sssj {

void InvIndex::Construct(const Stream& window, const MaxVector& /*unused*/,
                         std::vector<ResultPair>* pairs) {
  scratch_.stats = RunStats{};
  for (const StreamItem& x : window) {
    QueryInternal(x, &scratch_, pairs);
    AddInternal(x);
  }
  stats_ += scratch_.stats;
  ++stats_.index_rebuilds;
}

void InvIndex::Query(const StreamItem& x, BatchQueryScratch* scratch,
                     std::vector<ResultPair>* pairs) const {
  QueryInternal(x, scratch, pairs);
}

void InvIndex::Clear() {
  lists_.clear();
}

size_t InvIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [dim, list] : lists_) {
    bytes += sizeof(DimId) + list.capacity_bytes();
  }
  return bytes;
}

void InvIndex::QueryInternal(const StreamItem& x, BatchQueryScratch* scratch,
                             std::vector<ResultPair>* pairs) const {
  CandidateMap& cands = scratch->cands;
  RunStats& stats = scratch->stats;
  cands.Reset();
  for (const Coord& c : x.vec) {
    auto it = lists_.find(c.dim);
    if (it == lists_.end()) continue;
    const BatchPostingList& list = it->second;
    const size_t len = list.size();
    const VectorId* ids = list.id();
    const double* vals = list.value();
    const Timestamp* tss = list.ts();
    // SIMD path: batch the contribution products over the whole column
    // (bit-identical to the per-entry multiply); the per-entry loop then
    // carries only the candidate-map work.
    const double* contrib = nullptr;
    if (use_simd_ && len >= kernels::kMinSimdRun) {
      if (scratch->contrib.size() < len) scratch->contrib.resize(len);
      kernels::ProductColumn(vals, len, c.value, scratch->contrib.data());
      contrib = scratch->contrib.data();
    }
    for (size_t k = 0; k < len; ++k) {
      ++stats.entries_traversed;
      CandidateMap::Slot* slot = cands.FindOrCreate(ids[k]);
      if (slot->score == 0.0) {
        slot->ts = tss[k];
        cands.NoteAdmitted();
        ++stats.candidates_generated;
      }
      slot->score += contrib != nullptr ? contrib[k] : c.value * vals[k];
    }
  }
  cands.ForEachLive([&](VectorId id, double score, Timestamp ts) {
    ++stats.verify_calls;
    if (score >= theta_) {
      ResultPair p;
      p.a = id;
      p.b = x.id;
      p.ta = ts;
      p.tb = x.ts;
      p.dot = score;
      p.sim = score;
      pairs->push_back(p);
      ++stats.pairs_emitted;
    }
  });
}

void InvIndex::AddInternal(const StreamItem& x) {
  for (const Coord& c : x.vec) {
    lists_[c.dim].Append(x.id, c.value, 0.0, x.ts);
    ++stats_.entries_indexed;
  }
  ++stats_.vectors_processed;
}

}  // namespace sssj
