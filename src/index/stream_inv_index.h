// STR-INV (§5.1): streaming inverted index with no similarity pruning.
// Posting lists are time-sorted, so candidate generation scans each list
// backwards (newest first) and, upon meeting the first expired entry,
// truncates that entry and everything older in one O(expired) operation.
// Candidate generation accumulates the exact dot product, so verification
// is just the decayed threshold test.
#ifndef SSSJ_INDEX_STREAM_INV_INDEX_H_
#define SSSJ_INDEX_STREAM_INV_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/candidate_map.h"
#include "index/posting_list.h"
#include "index/stream_index.h"

namespace sssj {

class StreamInvIndex : public StreamIndex {
 public:
  // `use_simd` batches the per-entry contribution products through
  // kernels::ProductColumn — bit-identical output (lane-wise IEEE
  // multiply), so INV behaves the same on both kernel paths. `tiered`
  // enables the frozen-block cold tier (INV lists freeze especially
  // small: the all-zero prefix_norm column is elided per block).
  explicit StreamInvIndex(const DecayParams& params, bool use_simd = false,
                          const TieredStorageOptions& tiered = {})
      : params_(params), use_simd_(use_simd), tiered_(tiered) {}

  void ProcessArrival(const StreamItem& x, ResultSink* sink) override;
  void Clear() override;
  const char* name() const override { return "INV"; }
  size_t live_posting_entries() const override { return live_entries_; }
  size_t MemoryBytes() const override {
    return PostingMapMemoryBytes(lists_);
  }

 private:
  DecayParams params_;
  bool use_simd_;
  TieredStorageOptions tiered_;
  std::unordered_map<DimId, PostingList> lists_;
  CandidateMap cands_;
  std::vector<double> contrib_;  // kernel scratch (SIMD path only)
  FrozenColumns posting_;        // frozen-block decode scratch
};

}  // namespace sssj

#endif  // SSSJ_INDEX_STREAM_INV_INDEX_H_
