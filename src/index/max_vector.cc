// MaxVector and DecayedMaxVector are header-only; this translation unit
// exists to keep one .cc per module (and to hold any future out-of-line
// helpers).
#include "index/max_vector.h"
