#include "index/posting_list.h"

namespace sssj {

size_t PostingList::LowerBoundTsSlow(Timestamp cutoff) const {
  size_t lo = 1;  // caller already probed the front entry
  size_t hi = store_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (store_.Get<3>(mid) < cutoff) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t PostingList::LowerBoundTsTiered(Timestamp cutoff) const {
  // Time-sorted list: blocks are in time order, so the boundary lives in
  // the first block whose max_ts survives the cutoff. Whole expired
  // blocks are counted by header alone.
  size_t expired = 0;
  size_t skip = first_skip_;
  for (const FrozenBlock& blk : frozen_) {
    const size_t live = blk.count() - skip;
    if (blk.max_ts() < cutoff) {
      expired += live;
      skip = 0;
      continue;
    }
    const size_t older = blk.CountOlderThan(cutoff);
    return expired + (older > skip ? older - skip : 0);
  }
  // Every frozen entry expired; the boundary is in the tail.
  if (store_.empty() || store_.Get<3>(0) >= cutoff) return expired;
  return expired + LowerBoundTsSlow(cutoff);
}

size_t PostingList::TruncateFront(size_t n) {
  size_t left = n;
  size_t drop = 0;
  size_t skip = first_skip_;
  while (left > 0 && drop < frozen_.size()) {
    const size_t live = frozen_[drop].count() - skip;
    if (left >= live) {
      left -= live;
      frozen_live_ -= live;
      ++drop;
      skip = 0;
    } else {
      skip += left;
      frozen_live_ -= left;
      left = 0;
    }
  }
  if (drop > 0) {
    frozen_.erase(frozen_.begin(),
                  frozen_.begin() + static_cast<ptrdiff_t>(drop));
  }
  first_skip_ = frozen_.empty() ? 0 : skip;
  if (left > 0) store_.TruncateFront(left);
  // Consumed entries inside the straddling front block are dead bytes
  // until the block is rewritten. Rewrite once the block is half dead:
  // the live suffix shrinks geometrically across rewrites, so the cost
  // amortizes to O(1) per consumed entry, and no list ever retains more
  // dead frozen entries than live ones in its front block.
  if (first_skip_ > 0 && first_skip_ * 2 >= frozen_.front().count()) {
    CompactFrontBlock();
  }
  return n;
}

void PostingList::CompactFrontBlock() {
  FrozenBlock& blk = frozen_.front();
  FrozenColumns cols;
  blk.Thaw(&cols);
  FrozenSourceRun run;
  run.id = cols.id.data() + first_skip_;
  run.value = cols.value.data() + first_skip_;
  run.prefix_norm = cols.prefix_norm.data() + first_skip_;
  run.ts = cols.ts.data() + first_skip_;
  run.len = blk.count() - first_skip_;
  blk = FrozenBlock::Freeze(&run, 1, blk.tier(), blk.compressed());
  first_skip_ = 0;
}

size_t PostingList::CompactExpiredTail(Timestamp cutoff) {
  const size_t n = store_.size();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (store_.Get<3>(i) >= cutoff) {
      if (w != i) store_.MoveElement(w, i);
      ++w;
    }
  }
  const size_t removed = n - w;
  store_.TruncateBack(removed);
  return removed;
}

size_t PostingList::CompactExpired(Timestamp cutoff, FrozenColumns* scratch) {
  size_t removed = 0;
  if (!frozen_.empty()) {
    FrozenColumns local;
    FrozenColumns* cols = scratch != nullptr ? scratch : &local;
    std::vector<FrozenBlock> kept;
    kept.reserve(frozen_.size());
    size_t skip = first_skip_;
    for (FrozenBlock& blk : frozen_) {
      const size_t live = blk.count() - skip;
      if (skip == 0 && blk.min_ts() >= cutoff) {
        kept.push_back(std::move(blk));  // fully live
      } else if (blk.max_ts() < cutoff) {
        removed += live;  // fully expired: drop without touching bytes
      } else {
        // Straddling block (or a fully-live one carrying a skip): thaw,
        // filter survivors in order, re-freeze at the block's own tier
        // and physical form.
        blk.Thaw(cols);
        size_t w = skip;
        for (size_t i = skip; i < blk.count(); ++i) {
          if (cols->ts[i] >= cutoff) {
            cols->id[w] = cols->id[i];
            cols->value[w] = cols->value[i];
            cols->prefix_norm[w] = cols->prefix_norm[i];
            cols->ts[w] = cols->ts[i];
            ++w;
          }
        }
        const size_t survivors = w - skip;
        removed += live - survivors;
        if (survivors > 0) {
          FrozenSourceRun run;
          run.id = cols->id.data() + skip;
          run.value = cols->value.data() + skip;
          run.prefix_norm = cols->prefix_norm.data() + skip;
          run.ts = cols->ts.data() + skip;
          run.len = survivors;
          kept.push_back(
              FrozenBlock::Freeze(&run, 1, blk.tier(), blk.compressed()));
        }
      }
      skip = 0;
    }
    frozen_ = std::move(kept);
    first_skip_ = 0;
    frozen_live_ -= removed;
  }
  return removed + CompactExpiredTail(cutoff);
}

PostingEntry PostingList::FrozenGet(size_t i) const {
  size_t skip = first_skip_;
  size_t start = 0;
  for (const FrozenBlock& blk : frozen_) {
    const size_t live = blk.count() - skip;
    if (i < start + live) {
      FrozenColumns cols;
      blk.Thaw(&cols);
      const size_t k = skip + (i - start);
      return PostingEntry{cols.id[k], cols.value[k], cols.prefix_norm[k],
                          cols.ts[k]};
    }
    start += live;
    skip = 0;
  }
  assert(false && "frozen index out of range");
  return PostingEntry{};
}

void PostingList::FreezeQuantum(size_t n, size_t block_entries,
                                ValueTier tier, bool compress) {
  // Amend path: extend the newest block with the oldest tail entries
  // (thaw + concatenate + re-freeze) until it holds block_entries, then
  // start fresh blocks. Keeps the freeze quantum small without a header
  // per tiny block; re-freezing at the caller's `compress` choice also
  // migrates the boundary block's form when a list's scan rate flips.
  // The thaw scratch is local — this runs once per cold_freeze_quantum
  // appends, and for raw blocks the thaw is a memcpy.
  while (n > 0) {
    FrozenBlock* last = frozen_.empty() ? nullptr : &frozen_.back();
    // When the newest block is also the front block, its consumed prefix
    // (first_skip_) is dead — the re-freeze below rewrites the block
    // anyway, so dropping the prefix is free compaction.
    const size_t drop = frozen_.size() == 1 ? first_skip_ : 0;
    const bool amend =
        last != nullptr && last->count() - drop < block_entries;
    if (!amend) {
      const size_t take = n < block_entries ? n : block_entries;
      FreezeFront(take, tier, compress);
      n -= take;
      continue;
    }
    const size_t old = last->count() - drop;
    const size_t room = block_entries - old;
    const size_t take = n < room ? n : room;
    FrozenColumns cols;
    last->Thaw(&cols);
    cols.id.resize(drop + old + take);
    cols.value.resize(drop + old + take);
    cols.prefix_norm.resize(drop + old + take);
    cols.ts.resize(drop + old + take);
    for (size_t i = 0; i < take; ++i) {
      cols.id[drop + old + i] = store_.Get<0>(i);
      cols.value[drop + old + i] = store_.Get<1>(i);
      cols.prefix_norm[drop + old + i] = store_.Get<2>(i);
      cols.ts[drop + old + i] = store_.Get<3>(i);
    }
    FrozenSourceRun run;
    run.id = cols.id.data() + drop;
    run.value = cols.value.data() + drop;
    run.prefix_norm = cols.prefix_norm.data() + drop;
    run.ts = cols.ts.data() + drop;
    run.len = old + take;
    *last = FrozenBlock::Freeze(&run, 1, tier, compress);
    if (drop > 0) first_skip_ = 0;
    frozen_live_ += take;
    store_.TruncateFront(take);
    n -= take;
  }
}

void PostingList::FreezeFront(size_t n, ValueTier tier, bool compress) {
  ColumnStore::Segment segs[2];
  const size_t nsegs = store_.Segments(0, n, segs);
  FrozenSourceRun runs[2];
  for (size_t s = 0; s < nsegs; ++s) {
    runs[s].id = store_.ColumnData<0>() + segs[s].phys;
    runs[s].value = store_.ColumnData<1>() + segs[s].phys;
    runs[s].prefix_norm = store_.ColumnData<2>() + segs[s].phys;
    runs[s].ts = store_.ColumnData<3>() + segs[s].phys;
    runs[s].len = segs[s].len;
  }
  frozen_.push_back(FrozenBlock::Freeze(runs, nsegs, tier, compress));
  frozen_live_ += n;
  store_.TruncateFront(n);
}

}  // namespace sssj
