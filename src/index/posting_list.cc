#include "index/posting_list.h"

namespace sssj {

size_t PostingList::CompactExpired(Timestamp cutoff) {
  const size_t n = entries_.size();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (entries_[i].ts >= cutoff) {
      if (w != i) entries_[w] = entries_[i];
      ++w;
    }
  }
  const size_t removed = n - w;
  entries_.truncate_back(removed);
  return removed;
}

}  // namespace sssj
