#include "index/posting_list.h"

namespace sssj {

size_t PostingList::LowerBoundTsSlow(Timestamp cutoff) const {
  size_t lo = 1;  // caller already probed the front entry
  size_t hi = store_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (store_.Get<3>(mid) < cutoff) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t PostingList::CompactExpired(Timestamp cutoff) {
  const size_t n = store_.size();
  size_t w = 0;
  for (size_t i = 0; i < n; ++i) {
    if (store_.Get<3>(i) >= cutoff) {
      if (w != i) store_.MoveElement(w, i);
      ++w;
    }
  }
  const size_t removed = n - w;
  store_.TruncateBack(removed);
  return removed;
}

}  // namespace sssj
