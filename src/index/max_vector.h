// The two per-dimension maximum structures of §5.3.
//
// MaxVector       — m: plain per-dimension maximum over all vectors seen.
//                   Used by the AP b1 index-construction bound. In the
//                   streaming case its values only ever grow (the paper
//                   deliberately applies NO decay here, §6.2: decaying m
//                   would change it constantly and force re-indexing).
// DecayedMaxVector— m̂λ: time-decayed maximum over *indexed* values,
//                   m̂λ_j(t) = max_x { x_j · e^{−λ(t−t(x))} }. Because all
//                   entries decay at the same exponential rate, the argmax
//                   never changes between insertions, so storing the single
//                   winning (value, timestamp) pair per dimension is exact.
#ifndef SSSJ_INDEX_MAX_VECTOR_H_
#define SSSJ_INDEX_MAX_VECTOR_H_

#include <cmath>
#include <unordered_map>
#include <vector>

#include "core/sparse_vector.h"
#include "core/types.h"

namespace sssj {

class MaxVector {
 public:
  // Returns true iff the stored maximum increased.
  bool Update(DimId dim, double value) {
    auto [it, inserted] = values_.try_emplace(dim, value);
    if (inserted) return true;
    if (value > it->second) {
      it->second = value;
      return true;
    }
    return false;
  }

  // Updates from all coordinates; appends the dims whose max grew to
  // `updated_dims` (may be nullptr).
  void UpdateFrom(const SparseVector& v, std::vector<DimId>* updated_dims) {
    for (const Coord& c : v) {
      if (Update(c.dim, c.value) && updated_dims != nullptr) {
        updated_dims->push_back(c.dim);
      }
    }
  }

  double Get(DimId dim) const {
    auto it = values_.find(dim);
    return it == values_.end() ? 0.0 : it->second;
  }

  void Merge(const MaxVector& other) {
    for (const auto& [dim, val] : other.values_) Update(dim, val);
  }

  // dot(x, m) — upper bound on dot(x, y) for any y dominated by m.
  double Dot(const SparseVector& x) const {
    double s = 0.0;
    for (const Coord& c : x) s += c.value * Get(c.dim);
    return s;
  }

  size_t size() const { return values_.size(); }
  void Clear() { values_.clear(); }

 private:
  std::unordered_map<DimId, double> values_;
};

class DecayedMaxVector {
 public:
  explicit DecayedMaxVector(double lambda) : lambda_(lambda) {}

  // Records an indexed value x_j at time `ts`. `ts` must be >= every
  // previously recorded timestamp for correctness of the argmax argument —
  // except during L2AP re-indexing, which inserts *older* items; for those
  // we compare both candidates at the later of the two timestamps, which is
  // still exact because exponential decay preserves order.
  void Update(DimId dim, double value, Timestamp ts) {
    auto [it, inserted] = values_.try_emplace(dim, Entry{value, ts});
    if (inserted) return;
    Entry& e = it->second;
    // Compare both at time max(ts, e.ts).
    const Timestamp t = ts > e.ts ? ts : e.ts;
    const double cur = e.value * std::exp(-lambda_ * (t - e.ts));
    const double neu = value * std::exp(-lambda_ * (t - ts));
    if (neu > cur) e = Entry{value, ts};
  }

  // m̂λ_j(now).
  double Get(DimId dim, Timestamp now) const {
    auto it = values_.find(dim);
    if (it == values_.end()) return 0.0;
    return it->second.value * std::exp(-lambda_ * (now - it->second.ts));
  }

  // dot(x, m̂λ(now)) — the streaming rs1 bound (§5.3).
  double Dot(const SparseVector& x, Timestamp now) const {
    double s = 0.0;
    for (const Coord& c : x) s += c.value * Get(c.dim, now);
    return s;
  }

  size_t size() const { return values_.size(); }
  void Clear() { values_.clear(); }
  double lambda() const { return lambda_; }

 private:
  struct Entry {
    double value;
    Timestamp ts;
  };
  std::unordered_map<DimId, Entry> values_;
  double lambda_;
};

}  // namespace sssj

#endif  // SSSJ_INDEX_MAX_VECTOR_H_
