#include "index/sharded_stream_index.h"

namespace sssj {

ShardedStreamIndex::ShardedStreamIndex(const DecayParams& params,
                                       size_t num_threads,
                                       const L2IndexOptions& options,
                                       bool use_simd,
                                       const TieredStorageOptions& tiered)
    : ShardedStreamIndex(params, num_threads, nullptr, options, use_simd,
                         tiered) {}

ShardedStreamIndex::ShardedStreamIndex(const DecayParams& params,
                                       size_t num_threads,
                                       std::shared_ptr<ThreadPool> pool,
                                       const L2IndexOptions& options,
                                       bool use_simd,
                                       const TieredStorageOptions& tiered)
    : params_(params),
      options_(options),
      tiered_(tiered),
      shards_(num_threads < 1 ? 1 : num_threads),
      pool_(std::move(pool)) {
  if (pool_ == nullptr) {
    pool_ = std::make_shared<ThreadPool>(shards_.size());
  }
  for (Shard& shard : shards_) {
    RoleLock owner(shard.owner);  // construction: no workers exist yet
    shard.kernel.use_simd = use_simd;
    // Each worker owns ~1/S of the candidates; above the column
    // threshold the generate scan evaluates decay per owned entry
    // (kernels::DecayOne) instead of computing every span's full
    // column S times across the workers. Either way the values are
    // bit-identical, so the output matches the sequential simd engine.
    shard.kernel.owner_share = shards_.size();
  }
}

void ShardedStreamIndex::GeneratePhase(const StreamItem& x, Timestamp cutoff,
                                       size_t w, Shard& shard) {
  const size_t S = shards_.size();
  shard.phase_stats = L2PhaseStats{};
  shard.pairs.clear();
  shard.appended = 0;
  shard.pruned = 0;
  shard.cands.Reset();
  L2GenerateCandidates(
      x, params_, options_, prefix_norms_, cutoff,
      [&](DimId dim) -> PostingList* {
        auto& lists = shards_[dim % S].lists;
        auto it = lists.find(dim);
        return it == lists.end() ? nullptr : &it->second;
      },
      [&](VectorId id) { return id % S == w; },
      [](PostingList&, size_t) {},  // deferred: see phase 2
      &shard.kernel, &shard.cands, &shard.phase_stats);
}

void ShardedStreamIndex::VerifyAndConstructPhase(const StreamItem& x,
                                                 Timestamp cutoff,
                                                 const L2IndexSplit& split,
                                                 size_t w, Shard& shard) {
  const size_t S = shards_.size();
  const SparseVector& v = x.vec;
  // Bound here, in the annotated scope, so the emit lambda below touches
  // a plain reference instead of the owner-guarded field (lambda bodies
  // are analyzed without this function's REQUIRES).
  std::vector<ResultPair>& pairs = shard.pairs;
  L2VerifyCandidates(
      x, params_, options_, shard.cands, residuals_, &shard.kernel,
      &shard.phase_stats,
      [&pairs](const ResultPair& p) { pairs.push_back(p); });
  const size_t n = v.nnz();
  for (size_t i = 0; i < n; ++i) {
    const Coord& c = v.coord(i);
    if (c.dim % S != w) continue;
    auto it = shard.lists.find(c.dim);
    if (it != shard.lists.end()) {
      // Same truncation the sequential backward scan performs: drop the
      // time-sorted expired run at the front of every touched list,
      // located by binary search on the ts column. NoteScanned here —
      // not in the phase-1 lookup — because phase 1 reads lists across
      // shards and the classifier counter is not synchronized.
      PostingList& list = it->second;
      list.NoteScanned(stats_.vectors_processed);
      shard.pruned += list.TruncateFront(list.LowerBoundTs(cutoff));
    }
    if (i >= split.first_indexed) {
      PostingList& list = shard.lists[c.dim];
      list.Append(x.id, c.value, prefix_norms_[i], x.ts);
      list.MaybeFreeze(tiered_, stats_.vectors_processed);
      ++shard.appended;
    }
  }
}

void ShardedStreamIndex::ProcessArrival(const StreamItem& x,
                                        ResultSink* sink) {
  const SparseVector& v = x.vec;
  const Timestamp cutoff = x.ts - params_.tau;
  ++stats_.vectors_processed;
  residuals_.ExpireOlderThan(cutoff);
  if (v.empty()) return;

  L2ComputePrefixNorms(v, &prefix_norms_);
  const size_t S = shards_.size();

  // ---- Parallel phase 1: candidate generation ----
  // Lists are read-only here (expiry is deferred to phase 2, where each
  // worker owns the lists it truncates), so cross-shard lookups are safe.
  pool_->ParallelFor(S, [&](size_t w) {
    Shard& shard = shards_[w];
    RoleLock owner(shard.owner);
    GeneratePhase(x, cutoff, w, shard);
  });

  // ---- Parallel phase 2: verification + index construction ----
  // Verification reads the residual store (no writer is active);
  // construction touches only worker-owned lists. The coordinate split is
  // identical for all workers, so it is computed once up front.
  const L2IndexSplit split = L2ComputeIndexSplit(v, params_.theta);
  const size_t n = v.nnz();
  pool_->ParallelFor(S, [&](size_t w) {
    Shard& shard = shards_[w];
    RoleLock owner(shard.owner);
    VerifyAndConstructPhase(x, cutoff, split, w, shard);
  });

  // Residual direct index: single writer, after the workers are done.
  if (split.first_indexed < n) {
    residuals_.Insert(x.id, L2MakeResidualRecord(x, split));
  }

  // ---- Merge: deterministic emission and stats fold, in shard order ----
  // The ParallelFor barrier transferred every shard back to us; the
  // RoleLock per shard makes that hand-off explicit to the analysis.
  for (Shard& shard : shards_) {
    RoleLock owner(shard.owner);
    for (const ResultPair& p : shard.pairs) sink->Emit(p);
    shard.phase_stats.MergeInto(&stats_);
    NotePruned(shard.pruned);
  }
  // Append accounting last, mirroring the sequential index where pruning
  // happens during generation and NoteIndexed at the very end.
  size_t appended = 0;
  for (Shard& shard : shards_) {
    RoleLock owner(shard.owner);
    appended += shard.appended;
  }
  if (appended > 0) NoteIndexed(appended);
}

void ShardedStreamIndex::Clear() {
  for (Shard& shard : shards_) {
    RoleLock owner(shard.owner);  // no arrival in flight: sole owner
    shard.lists.clear();
    shard.pairs.clear();
    shard.appended = 0;
    shard.pruned = 0;
  }
  residuals_.Clear();
  live_entries_ = 0;
}

size_t ShardedStreamIndex::MemoryBytes() const {
  size_t bytes = residuals_.ApproxBytes();
  for (const Shard& shard : shards_) {
    bytes += PostingMapMemoryBytes(shard.lists);
  }
  return bytes;
}

}  // namespace sssj
