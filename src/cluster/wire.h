// Cluster wire protocol — length-prefixed, versioned binary frames
// between the supervisor/router and its worker processes.
//
// Framing (all integers little-endian, doubles as IEEE-754 bit images):
//
//   frame     := u32 payload_len | u8 frame_type | payload[payload_len]
//
// A connection opens with a Hello exchange (magic + protocol version) so
// a stale peer fails fast with a named reason instead of misparsing
// frames. Every payload decoder is bounds-checked span parsing in the
// style of the checkpoint/codec hardening: declared lengths are capped
// before any allocation, truncation at any byte yields a clean error,
// and unknown frame types are refused — the whole surface is driven by
// fuzz/fuzz_wire.cc against adversarial bytes.
//
// Request frames (supervisor → worker), all carrying the session name:
//
//   type            payload                          reply extras
//   kHello          magic u32, version u16           version echoed in blob
//   kCreateSession  name, WireConfig                 —
//   kPush           name, ts f64, vector             pairs emitted by it
//   kPushBatch      name, count u32, (ts, vector)*   pairs + per-item rejects
//   kFlush          name                             pairs drained
//   kCheckpoint     name                             SSSJENG3 bytes in blob
//   kRestore        name, WireConfig, blob           — (create + load bytes)
//   kMigrateOut     name                             SSSJENG3 bytes in blob;
//                                                    session destroyed
//   kCloseSession   name                             pairs from final flush
//   kStats          name                             SessionWireStats in blob
//   kShutdown       —                                — (worker exits after)
//
// The single response frame type kReply carries a Status, the pairs the
// request caused the engine to emit (bit-exact doubles — the cluster's
// bitwise-equivalence pins hang on this), per-item reject statuses for
// batches, and an opaque blob (checkpoint bytes, encoded stats). Moving
// session state always reuses the engine's portable SSSJENG3 checkpoint
// verbatim: migration and crash-restore are a save→transfer→load of
// bytes this protocol never looks inside.
#ifndef SSSJ_CLUSTER_WIRE_H_
#define SSSJ_CLUSTER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/result.h"
#include "core/status.h"
#include "core/stream_item.h"

namespace sssj {
namespace cluster {

// Protocol identity. Bump kWireVersion on any frame/payload change; the
// Hello exchange turns a mismatch into a named refusal.
inline constexpr uint32_t kWireMagic = 0x50575353;  // "SSWP" little-endian
inline constexpr uint16_t kWireVersion = 1;

// Hard caps on untrusted declared sizes: nothing a hostile peer declares
// may drive an allocation past these before the bytes actually arrive.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB
inline constexpr uint32_t kMaxWireString = 1u << 20;     // names, messages
inline constexpr uint32_t kMaxWireNnz = 1u << 22;        // coords per vector
inline constexpr uint32_t kMaxWireBatch = 1u << 20;      // items per batch
inline constexpr uint32_t kMaxWirePairs = 1u << 24;      // pairs per reply

enum class FrameType : uint8_t {
  kHello = 1,
  kCreateSession = 2,
  kPush = 3,
  kPushBatch = 4,
  kFlush = 5,
  kCheckpoint = 6,
  kRestore = 7,
  kMigrateOut = 8,
  kCloseSession = 9,
  kStats = 10,
  kShutdown = 11,
  kReply = 12,
};

// "kPush", ... for diagnostics.
const char* ToString(FrameType type);

// Frame header: 5 bytes on the wire.
inline constexpr size_t kFrameHeaderSize = 5;

struct FrameHeader {
  FrameType type = FrameType::kHello;
  uint32_t payload_len = 0;
};

// Validates the 5 header bytes: known type, payload_len <= cap. On
// failure *error names the defect and the header is unusable.
bool DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out,
                       std::string* error);

// payload_len | type prefix + payload, appended to *out.
void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out);

// ---- bounds-checked primitives ----

// Append-only payload builder. All Put* are infallible (the caller caps
// sizes before encoding); buffer() is the finished payload.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  // u32 length + raw bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void PutVector(const SparseVector& vec);
  void PutStatus(const Status& status);
  void PutPair(const ResultPair& pair);

  const std::string& buffer() const { return buf_; }
  std::string&& Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

// Span reader. Every Get* returns false (and poisons the reader) on
// truncation or a domain violation; decode functions translate that into
// a Status naming the frame. Never reads past [data, data+size).
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit WireReader(const std::string& payload)
      : WireReader(reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size()) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU16(uint16_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  // Rejects declared lengths beyond the remaining bytes or `cap`.
  bool GetString(std::string* s, uint32_t cap = kMaxWireString);
  // Rejects non-finite values, non-positive values, unsorted/duplicate
  // dims, and nnz beyond cap — the same domain the checkpoint loader
  // enforces, so a hostile frame cannot smuggle an invalid vector into
  // the engine.
  bool GetVector(SparseVector* vec);
  bool GetStatus(Status* status);
  bool GetPair(ResultPair* pair);

  bool failed() const { return failed_; }
  bool AtEnd() const { return pos_ == size_ && !failed_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool GetRaw(void* p, size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

// ---- payload structs ----

// The deterministic engine-config subset that travels with a session.
// Execution knobs (threads, kernels, tiering, ingestion) stay host-local:
// the worker resolves them, so two placements of one session always
// produce bit-identical output. enable_migration is implied — every
// cluster session must speak the portable checkpoint format.
struct WireConfig {
  Framework framework = Framework::kStreaming;
  IndexScheme index = IndexScheme::kL2;
  double theta = 0.7;
  double lambda = 0.01;
  bool normalize_inputs = true;

  // The engine config a worker builds from this: the fields above plus
  // adaptive.enable_migration = true.
  EngineConfig ToEngineConfig() const;
  static WireConfig FromEngineConfig(const EngineConfig& config);
};

struct HelloPayload {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
};

struct CreateSessionRequest {
  std::string name;
  WireConfig config;
};

struct PushRequest {
  std::string name;
  Timestamp ts = 0.0;
  SparseVector vec;
};

struct PushBatchRequest {
  std::string name;
  // (ts, vec) — ids are assigned worker-side, exactly like PushBatch on a
  // local engine.
  std::vector<std::pair<Timestamp, SparseVector>> items;
};

// Flush / Checkpoint / MigrateOut / CloseSession / Stats all carry just
// the session name.
struct NameRequest {
  std::string name;
};

struct RestoreRequest {
  std::string name;
  WireConfig config;
  std::string checkpoint;  // SSSJENG3 bytes, opaque to the protocol
};

// Worker → supervisor. `pairs` preserves the engine's emission order and
// exact double bits; `rejects` mirrors BatchPushResult; `blob` carries
// checkpoint bytes or an encoded SessionWireStats.
struct Reply {
  Status status;
  uint64_t accepted = 0;
  std::vector<std::pair<uint32_t, Status>> rejects;
  std::vector<ResultPair> pairs;
  std::string blob;
};

// The per-session stat summary that crosses the wire.
struct SessionWireStats {
  uint64_t vectors_processed = 0;
  uint64_t pairs_emitted = 0;
  uint64_t memory_bytes = 0;
};

// ---- encoders (infallible given capped inputs) ----

std::string EncodeHello(const HelloPayload& hello);
std::string EncodeCreateSession(const CreateSessionRequest& req);
std::string EncodePush(const PushRequest& req);
std::string EncodePushBatch(const PushBatchRequest& req);
std::string EncodeName(const NameRequest& req);
std::string EncodeRestore(const RestoreRequest& req);
std::string EncodeReply(const Reply& reply);
std::string EncodeSessionStats(const SessionWireStats& stats);

// ---- decoders (hostile-input validated; Status names every defect) ----

Status DecodeHello(const std::string& payload, HelloPayload* out);
Status DecodeCreateSession(const std::string& payload,
                           CreateSessionRequest* out);
Status DecodePush(const std::string& payload, PushRequest* out);
Status DecodePushBatch(const std::string& payload, PushBatchRequest* out);
Status DecodeName(const std::string& payload, NameRequest* out);
Status DecodeRestore(const std::string& payload, RestoreRequest* out);
Status DecodeReply(const std::string& payload, Reply* out);
Status DecodeSessionStats(const std::string& payload, SessionWireStats* out);

// Rendezvous (highest-random-weight) placement: the worker slot in
// [0, num_workers) with the largest keyed hash of (name, slot). Every
// router instance computes the same owner for the same fleet size, and
// changing the fleet by one slot moves only ~1/K of the sessions.
int RendezvousOwner(const std::string& name, int num_workers);

}  // namespace cluster
}  // namespace sssj

#endif  // SSSJ_CLUSTER_WIRE_H_
