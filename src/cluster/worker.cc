#include "cluster/worker.h"

#include <sstream>
#include <utility>

namespace sssj {
namespace cluster {

namespace {

Reply ErrorReply(Status status) {
  Reply reply;
  reply.status = std::move(status);
  return reply;
}

JoinServiceOptions ForceSingleThread(JoinServiceOptions options) {
  options.num_threads = 1;
  return options;
}

}  // namespace

Worker::Worker(const WorkerOptions& options)
    : service_(ForceSingleThread(options.service)) {}

Status Worker::Serve(FrameChannel* channel) {
  for (;;) {
    FrameType type;
    std::string payload;
    Status status = channel->Recv(&type, &payload);
    if (!status.ok()) return status;
    bool shutdown = false;
    const Reply reply = Handle(type, payload, &shutdown);
    status = channel->Send(FrameType::kReply, EncodeReply(reply));
    if (!status.ok()) return status;
    if (shutdown) return Status::Ok();
  }
}

Reply Worker::Handle(FrameType type, const std::string& payload,
                     bool* shutdown) {
  *shutdown = false;
  switch (type) {
    case FrameType::kHello:
      return HandleHello(payload);
    case FrameType::kCreateSession:
      return HandleCreateSession(payload);
    case FrameType::kPush:
      return HandlePush(payload);
    case FrameType::kPushBatch:
      return HandlePushBatch(payload);
    case FrameType::kFlush:
      return HandleFlush(payload);
    case FrameType::kCheckpoint:
      return HandleCheckpoint(payload);
    case FrameType::kRestore:
      return HandleRestore(payload);
    case FrameType::kMigrateOut:
      return HandleMigrateOut(payload);
    case FrameType::kCloseSession:
      return HandleCloseSession(payload);
    case FrameType::kStats:
      return HandleStats(payload);
    case FrameType::kShutdown: {
      *shutdown = true;
      Reply reply;
      reply.status = Status::Ok();
      return reply;
    }
    case FrameType::kReply:
      return ErrorReply(Status::InvalidArgument(
          "a worker does not accept kReply frames as requests"));
  }
  return ErrorReply(Status::InvalidArgument("unknown frame type"));
}

void Worker::DrainPairs(CollectorSink* sink, Reply* reply) {
  reply->pairs.assign(sink->pairs().begin(), sink->pairs().end());
  sink->Clear();
}

Worker::SessionRec* Worker::Find(const std::string& name) {
  auto it = sessions_.find(name);
  return it == sessions_.end() ? nullptr : &it->second;
}

Reply Worker::HandleHello(const std::string& payload) {
  HelloPayload hello;
  Status status = DecodeHello(payload, &hello);
  if (!status.ok()) return ErrorReply(std::move(status));
  Reply reply;
  if (hello.magic != kWireMagic) {
    reply.status = Status::FailedPrecondition(
        "wire magic mismatch: peer sent " + std::to_string(hello.magic) +
        ", expected " + std::to_string(kWireMagic));
  } else if (hello.version != kWireVersion) {
    reply.status = Status::FailedPrecondition(
        "wire protocol version mismatch: peer speaks version " +
        std::to_string(hello.version) + ", this worker speaks " +
        std::to_string(kWireVersion));
  }
  // Echo our identity so the peer can name the mismatch from its side.
  reply.blob = EncodeHello(HelloPayload{});
  return reply;
}

Reply Worker::HandleCreateSession(const std::string& payload) {
  CreateSessionRequest req;
  Status status = DecodeCreateSession(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  if (Find(req.name) != nullptr) {
    return ErrorReply(Status::AlreadyExists("a session named '" + req.name +
                                            "' already exists on this worker"));
  }
  SessionRec rec;
  rec.sink = std::make_unique<CollectorSink>();
  StatusOr<JoinService::SessionHandle> handle = service_.CreateSession(
      {req.name, req.config.ToEngineConfig(), rec.sink.get()});
  if (!handle.ok()) return ErrorReply(handle.status());
  rec.handle = *handle;
  sessions_.emplace(req.name, std::move(rec));
  return Reply{};
}

Reply Worker::HandlePush(const std::string& payload) {
  PushRequest req;
  Status status = DecodePush(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  Reply reply;
  reply.status = service_.Push(rec->handle, req.ts, std::move(req.vec));
  if (reply.status.ok()) reply.accepted = 1;
  DrainPairs(rec->sink.get(), &reply);
  return reply;
}

Reply Worker::HandlePushBatch(const std::string& payload) {
  PushBatchRequest req;
  Status status = DecodePushBatch(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  Stream batch;
  batch.reserve(req.items.size());
  for (auto& [ts, vec] : req.items) {
    StreamItem item;
    item.ts = ts;
    item.vec = std::move(vec);
    batch.push_back(std::move(item));
  }
  Reply reply;
  StatusOr<BatchPushResult> result = service_.PushBatch(rec->handle, batch);
  if (!result.ok()) {
    reply.status = result.status();
  } else {
    reply.accepted = result->accepted;
    reply.rejects.reserve(result->rejects.size());
    for (const BatchPushResult::Reject& reject : result->rejects) {
      reply.rejects.emplace_back(static_cast<uint32_t>(reject.index),
                                 reject.status);
    }
  }
  DrainPairs(rec->sink.get(), &reply);
  return reply;
}

Reply Worker::HandleFlush(const std::string& payload) {
  NameRequest req;
  Status status = DecodeName(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  Reply reply;
  reply.status = service_.Flush(rec->handle);
  DrainPairs(rec->sink.get(), &reply);
  return reply;
}

Reply Worker::HandleCheckpoint(const std::string& payload) {
  NameRequest req;
  Status status = DecodeName(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  std::ostringstream os;
  status = service_.SaveCheckpoint(rec->handle, os);
  if (!status.ok()) return ErrorReply(std::move(status));
  Reply reply;
  reply.blob = std::move(os).str();
  return reply;
}

Reply Worker::HandleRestore(const std::string& payload) {
  RestoreRequest req;
  Status status = DecodeRestore(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  if (Find(req.name) != nullptr) {
    return ErrorReply(Status::AlreadyExists("a session named '" + req.name +
                                            "' already exists on this worker"));
  }
  SessionRec rec;
  rec.sink = std::make_unique<CollectorSink>();
  StatusOr<JoinService::SessionHandle> handle = service_.CreateSession(
      {req.name, req.config.ToEngineConfig(), rec.sink.get()});
  if (!handle.ok()) return ErrorReply(handle.status());
  std::istringstream is(req.checkpoint);
  status = service_.LoadCheckpoint(*handle, is);
  if (!status.ok()) {
    // Roll the half-born session back: a refused restore (truncated
    // bytes, or a native SSSJENG2 checkpoint migration cannot use) must
    // leave the worker exactly as it was.
    service_.AbandonSession(*handle);
    return ErrorReply(std::move(status));
  }
  rec.handle = *handle;
  // A restore emits nothing immediately (the checkpoint's watermark
  // suppresses replayed pairs), but drain defensively so reply pairs
  // always reflect this request only.
  Reply reply;
  DrainPairs(rec.sink.get(), &reply);
  reply.pairs.clear();
  sessions_.emplace(req.name, std::move(rec));
  return reply;
}

Reply Worker::HandleMigrateOut(const std::string& payload) {
  NameRequest req;
  Status status = DecodeName(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  std::ostringstream os;
  status = service_.SaveCheckpoint(rec->handle, os);
  if (!status.ok()) return ErrorReply(std::move(status));
  // Abandon, not Close: pairs still pending in MB windows live inside
  // the checkpoint bytes and will emit at the destination; a flush here
  // would deliver them twice.
  status = service_.AbandonSession(rec->handle);
  if (!status.ok()) return ErrorReply(std::move(status));
  sessions_.erase(req.name);
  Reply reply;
  reply.blob = std::move(os).str();
  return reply;
}

Reply Worker::HandleCloseSession(const std::string& payload) {
  NameRequest req;
  Status status = DecodeName(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  auto it = sessions_.find(req.name);
  if (it == sessions_.end()) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  Reply reply;
  reply.status = service_.CloseSession(it->second.handle);
  DrainPairs(it->second.sink.get(), &reply);
  sessions_.erase(it);
  return reply;
}

Reply Worker::HandleStats(const std::string& payload) {
  NameRequest req;
  Status status = DecodeName(payload, &req);
  if (!status.ok()) return ErrorReply(std::move(status));
  SessionRec* rec = Find(req.name);
  if (rec == nullptr) {
    return ErrorReply(
        Status::NotFound("no session named '" + req.name + "' on this worker"));
  }
  StatusOr<RunStats> stats = service_.SessionStats(rec->handle);
  if (!stats.ok()) return ErrorReply(stats.status());
  StatusOr<size_t> memory = service_.SessionMemoryBytes(rec->handle);
  if (!memory.ok()) return ErrorReply(memory.status());
  SessionWireStats wire_stats;
  wire_stats.vectors_processed = stats->vectors_processed;
  wire_stats.pairs_emitted = stats->pairs_emitted;
  wire_stats.memory_bytes = *memory;
  Reply reply;
  reply.blob = EncodeSessionStats(wire_stats);
  return reply;
}

}  // namespace cluster
}  // namespace sssj
