#include "cluster/wire.h"

#include <cmath>

namespace sssj {
namespace cluster {

const char* ToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "kHello";
    case FrameType::kCreateSession:
      return "kCreateSession";
    case FrameType::kPush:
      return "kPush";
    case FrameType::kPushBatch:
      return "kPushBatch";
    case FrameType::kFlush:
      return "kFlush";
    case FrameType::kCheckpoint:
      return "kCheckpoint";
    case FrameType::kRestore:
      return "kRestore";
    case FrameType::kMigrateOut:
      return "kMigrateOut";
    case FrameType::kCloseSession:
      return "kCloseSession";
    case FrameType::kStats:
      return "kStats";
    case FrameType::kShutdown:
      return "kShutdown";
    case FrameType::kReply:
      return "kReply";
  }
  return "unknown";
}

bool DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out,
                       std::string* error) {
  if (size < kFrameHeaderSize) {
    if (error != nullptr) *error = "truncated frame header";
    return false;
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, data, sizeof(payload_len));
  const uint8_t type_byte = data[4];
  if (type_byte < static_cast<uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<uint8_t>(FrameType::kReply)) {
    if (error != nullptr) {
      *error = "unknown frame type " + std::to_string(type_byte);
    }
    return false;
  }
  if (payload_len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "declared payload length " + std::to_string(payload_len) +
               " exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte frame cap";
    }
    return false;
  }
  out->type = static_cast<FrameType>(type_byte);
  out->payload_len = payload_len;
  return true;
}

void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->push_back(static_cast<char>(type));
  out->append(payload);
}

void WireWriter::PutVector(const SparseVector& vec) {
  PutU32(static_cast<uint32_t>(vec.nnz()));
  for (const Coord& c : vec) {
    PutU32(c.dim);
    PutF64(c.value);
  }
}

void WireWriter::PutStatus(const Status& status) {
  PutU8(static_cast<uint8_t>(status.code()));
  PutString(status.message());
}

void WireWriter::PutPair(const ResultPair& pair) {
  PutU64(pair.a);
  PutU64(pair.b);
  PutF64(pair.ta);
  PutF64(pair.tb);
  PutF64(pair.dot);
  PutF64(pair.sim);
}

bool WireReader::GetString(std::string* s, uint32_t cap) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (len > cap || size_ - pos_ < len) {
    failed_ = true;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

bool WireReader::GetVector(SparseVector* vec) {
  uint32_t nnz = 0;
  if (!GetU32(&nnz)) return false;
  // 12 bytes per coordinate must actually be present before any reserve.
  if (nnz > kMaxWireNnz || size_ - pos_ < static_cast<size_t>(nnz) * 12) {
    failed_ = true;
    return false;
  }
  std::vector<Coord> coords;
  coords.reserve(nnz);
  DimId prev_dim = 0;
  for (uint32_t i = 0; i < nnz; ++i) {
    Coord c;
    if (!GetU32(&c.dim) || !GetF64(&c.value)) return false;
    if (!std::isfinite(c.value) || !(c.value > 0.0) ||
        (i > 0 && c.dim <= prev_dim)) {
      failed_ = true;
      return false;
    }
    prev_dim = c.dim;
    coords.push_back(c);
  }
  // Validated sorted/positive/finite above, so this is an identity
  // reconstruction with recomputed stats (same as the checkpoint loader).
  *vec = SparseVector::FromCoords(std::move(coords));
  return true;
}

bool WireReader::GetStatus(Status* status) {
  uint8_t code = 0;
  std::string message;
  if (!GetU8(&code) || !GetString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    failed_ = true;
    return false;
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

bool WireReader::GetPair(ResultPair* pair) {
  return GetU64(&pair->a) && GetU64(&pair->b) && GetF64(&pair->ta) &&
         GetF64(&pair->tb) && GetF64(&pair->dot) && GetF64(&pair->sim);
}

EngineConfig WireConfig::ToEngineConfig() const {
  EngineConfig config;
  config.framework = framework;
  config.index = index;
  config.theta = theta;
  config.lambda = lambda;
  config.normalize_inputs = normalize_inputs;
  // Every cluster session must speak the portable SSSJENG3 checkpoint:
  // it is the wire format for migration and crash-restore.
  config.adaptive.enable_migration = true;
  return config;
}

WireConfig WireConfig::FromEngineConfig(const EngineConfig& config) {
  WireConfig wire;
  wire.framework = config.framework;
  wire.index = config.index;
  wire.theta = config.theta;
  wire.lambda = config.lambda;
  wire.normalize_inputs = config.normalize_inputs;
  return wire;
}

namespace {

void PutConfig(const WireConfig& config, WireWriter* w) {
  w->PutU8(config.framework == Framework::kMiniBatch ? 0 : 1);
  w->PutU8(static_cast<uint8_t>(config.index));
  w->PutF64(config.theta);
  w->PutF64(config.lambda);
  w->PutU8(config.normalize_inputs ? 1 : 0);
}

bool GetConfig(WireReader* r, WireConfig* config) {
  uint8_t framework = 0;
  uint8_t scheme = 0;
  uint8_t normalize = 0;
  if (!r->GetU8(&framework) || !r->GetU8(&scheme) ||
      !r->GetF64(&config->theta) || !r->GetF64(&config->lambda) ||
      !r->GetU8(&normalize)) {
    return false;
  }
  // kAuto is deliberately refused on the wire: a cluster session's scheme
  // must be concrete so both ends agree on what is running.
  if (framework > 1 || scheme > static_cast<uint8_t>(IndexScheme::kL2) ||
      normalize > 1) {
    return false;
  }
  if (!std::isfinite(config->theta) || !(config->theta > 0.0) ||
      config->theta > 1.0 || !std::isfinite(config->lambda) ||
      config->lambda < 0.0) {
    return false;
  }
  config->framework =
      framework == 0 ? Framework::kMiniBatch : Framework::kStreaming;
  config->index = static_cast<IndexScheme>(scheme);
  config->normalize_inputs = normalize != 0;
  return true;
}

Status Malformed(const char* what) {
  return Status::DataLoss(std::string("malformed ") + what + " payload");
}

// Every decoder requires the payload to be fully consumed: trailing bytes
// mean the two ends disagree about the format — fail loudly now, not
// at some later frame boundary.
Status FinishDecode(const WireReader& reader, const char* what) {
  if (!reader.AtEnd()) return Malformed(what);
  return Status::Ok();
}

}  // namespace

std::string EncodeHello(const HelloPayload& hello) {
  WireWriter w;
  w.PutU32(hello.magic);
  w.PutU16(hello.version);
  return w.Take();
}

Status DecodeHello(const std::string& payload, HelloPayload* out) {
  WireReader r(payload);
  if (!r.GetU32(&out->magic) || !r.GetU16(&out->version)) {
    return Malformed("kHello");
  }
  return FinishDecode(r, "kHello");
}

std::string EncodeCreateSession(const CreateSessionRequest& req) {
  WireWriter w;
  w.PutString(req.name);
  PutConfig(req.config, &w);
  return w.Take();
}

Status DecodeCreateSession(const std::string& payload,
                           CreateSessionRequest* out) {
  WireReader r(payload);
  if (!r.GetString(&out->name) || out->name.empty() ||
      !GetConfig(&r, &out->config)) {
    return Malformed("kCreateSession");
  }
  return FinishDecode(r, "kCreateSession");
}

std::string EncodePush(const PushRequest& req) {
  WireWriter w;
  w.PutString(req.name);
  w.PutF64(req.ts);
  w.PutVector(req.vec);
  return w.Take();
}

Status DecodePush(const std::string& payload, PushRequest* out) {
  WireReader r(payload);
  if (!r.GetString(&out->name) || out->name.empty() || !r.GetF64(&out->ts) ||
      !r.GetVector(&out->vec)) {
    return Malformed("kPush");
  }
  return FinishDecode(r, "kPush");
}

std::string EncodePushBatch(const PushBatchRequest& req) {
  WireWriter w;
  w.PutString(req.name);
  w.PutU32(static_cast<uint32_t>(req.items.size()));
  for (const auto& [ts, vec] : req.items) {
    w.PutF64(ts);
    w.PutVector(vec);
  }
  return w.Take();
}

Status DecodePushBatch(const std::string& payload, PushBatchRequest* out) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.GetString(&out->name) || out->name.empty() || !r.GetU32(&count)) {
    return Malformed("kPushBatch");
  }
  // Each item is at least 12 bytes (ts + empty-vector nnz); the declared
  // count must be coverable by the bytes present before any reserve.
  if (count > kMaxWireBatch || r.remaining() < static_cast<size_t>(count) * 12) {
    return Malformed("kPushBatch");
  }
  out->items.clear();
  out->items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Timestamp ts = 0.0;
    SparseVector vec;
    if (!r.GetF64(&ts) || !r.GetVector(&vec)) return Malformed("kPushBatch");
    out->items.emplace_back(ts, std::move(vec));
  }
  return FinishDecode(r, "kPushBatch");
}

std::string EncodeName(const NameRequest& req) {
  WireWriter w;
  w.PutString(req.name);
  return w.Take();
}

Status DecodeName(const std::string& payload, NameRequest* out) {
  WireReader r(payload);
  if (!r.GetString(&out->name) || out->name.empty()) {
    return Malformed("name");
  }
  return FinishDecode(r, "name");
}

std::string EncodeRestore(const RestoreRequest& req) {
  WireWriter w;
  w.PutString(req.name);
  PutConfig(req.config, &w);
  w.PutU32(static_cast<uint32_t>(req.checkpoint.size()));
  std::string out = w.Take();
  out.append(req.checkpoint);
  return out;
}

Status DecodeRestore(const std::string& payload, RestoreRequest* out) {
  WireReader r(payload);
  if (!r.GetString(&out->name) || out->name.empty() ||
      !GetConfig(&r, &out->config) ||
      !r.GetString(&out->checkpoint, kMaxFramePayload)) {
    return Malformed("kRestore");
  }
  return FinishDecode(r, "kRestore");
}

std::string EncodeReply(const Reply& reply) {
  WireWriter w;
  w.PutStatus(reply.status);
  w.PutU64(reply.accepted);
  w.PutU32(static_cast<uint32_t>(reply.rejects.size()));
  for (const auto& [index, status] : reply.rejects) {
    w.PutU32(index);
    w.PutStatus(status);
  }
  w.PutU32(static_cast<uint32_t>(reply.pairs.size()));
  for (const ResultPair& pair : reply.pairs) w.PutPair(pair);
  std::string out = w.Take();
  const uint32_t blob_len = static_cast<uint32_t>(reply.blob.size());
  out.append(reinterpret_cast<const char*>(&blob_len), sizeof(blob_len));
  out.append(reply.blob);
  return out;
}

Status DecodeReply(const std::string& payload, Reply* out) {
  WireReader r(payload);
  uint32_t reject_count = 0;
  if (!r.GetStatus(&out->status) || !r.GetU64(&out->accepted) ||
      !r.GetU32(&reject_count)) {
    return Malformed("kReply");
  }
  // A reject is at least 9 bytes (index + status code + empty message).
  if (reject_count > kMaxWireBatch ||
      r.remaining() < static_cast<size_t>(reject_count) * 9) {
    return Malformed("kReply");
  }
  out->rejects.clear();
  out->rejects.reserve(reject_count);
  for (uint32_t i = 0; i < reject_count; ++i) {
    uint32_t index = 0;
    Status status;
    if (!r.GetU32(&index) || !r.GetStatus(&status)) return Malformed("kReply");
    out->rejects.emplace_back(index, std::move(status));
  }
  uint32_t pair_count = 0;
  if (!r.GetU32(&pair_count)) return Malformed("kReply");
  if (pair_count > kMaxWirePairs ||
      r.remaining() < static_cast<size_t>(pair_count) * 48) {
    return Malformed("kReply");
  }
  out->pairs.clear();
  out->pairs.reserve(pair_count);
  for (uint32_t i = 0; i < pair_count; ++i) {
    ResultPair pair;
    if (!r.GetPair(&pair)) return Malformed("kReply");
    out->pairs.push_back(pair);
  }
  if (!r.GetString(&out->blob, kMaxFramePayload)) return Malformed("kReply");
  return FinishDecode(r, "kReply");
}

std::string EncodeSessionStats(const SessionWireStats& stats) {
  WireWriter w;
  w.PutU64(stats.vectors_processed);
  w.PutU64(stats.pairs_emitted);
  w.PutU64(stats.memory_bytes);
  return w.Take();
}

Status DecodeSessionStats(const std::string& payload, SessionWireStats* out) {
  WireReader r(payload);
  if (!r.GetU64(&out->vectors_processed) || !r.GetU64(&out->pairs_emitted) ||
      !r.GetU64(&out->memory_bytes)) {
    return Malformed("stats blob");
  }
  return FinishDecode(r, "stats blob");
}

namespace {

// splitmix64 — deterministic across platforms, good avalanche for the
// rendezvous weights.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, then mixed per slot
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

int RendezvousOwner(const std::string& name, int num_workers) {
  if (num_workers <= 1) return 0;
  const uint64_t name_hash = HashName(name);
  int best = 0;
  uint64_t best_weight = 0;
  for (int w = 0; w < num_workers; ++w) {
    const uint64_t weight = Mix64(name_hash ^ Mix64(static_cast<uint64_t>(w)));
    if (w == 0 || weight > best_weight) {
      best = w;
      best_weight = weight;
    }
  }
  return best;
}

}  // namespace cluster
}  // namespace sssj
