// Blocking frame transport over Unix-domain stream sockets.
//
// The wire layer (cluster/wire.h) is pure byte parsing; this is the thin
// OS boundary under it: connect/listen/accept on AF_UNIX paths (or an
// already-connected fd from socketpair(2) — how the supervisor talks to
// the workers it forks), and Send/Recv of whole frames with EINTR-safe
// full reads/writes. Every transport failure — peer gone (EOF, EPIPE,
// ECONNRESET), short socket, OS error — comes back as kIoError; the
// supervisor treats any kIoError from a worker channel as worker death
// and runs the restart/restore path. Writes use MSG_NOSIGNAL so a dead
// peer is an error return, never a SIGPIPE kill.
//
// A channel is used by one thread at a time (the worker's serve loop,
// the supervisor's request path); it does no locking of its own.
#ifndef SSSJ_CLUSTER_CHANNEL_H_
#define SSSJ_CLUSTER_CHANNEL_H_

#include <string>

#include "cluster/wire.h"
#include "core/status.h"

namespace sssj {
namespace cluster {

class FrameChannel {
 public:
  FrameChannel() = default;
  // Takes ownership of a connected stream-socket fd.
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { Close(); }

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;
  FrameChannel(FrameChannel&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  FrameChannel& operator=(FrameChannel&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  // Writes one complete frame. kIoError when the peer is gone or the
  // payload exceeds the frame cap.
  Status Send(FrameType type, const std::string& payload);

  // Reads one complete frame, enforcing the header's caps before the
  // payload allocation. kIoError on EOF/transport failure, kDataLoss on a
  // malformed header (the peer speaks a different protocol).
  Status Recv(FrameType* type, std::string* payload);

  // Send + Recv, refusing anything but a kReply in response.
  Status Call(FrameType type, const std::string& payload, Reply* reply);

 private:
  int fd_ = -1;
};

// Binds and listens on `path` (unlinking a stale socket first).
Status ListenUnix(const std::string& path, int* listen_fd);

// Blocks for one connection; the caller owns *conn_fd.
Status AcceptOne(int listen_fd, int* conn_fd);

// Connects to `path`, retrying for up to `timeout_ms` while the server
// is still binding (ECONNREFUSED / ENOENT).
Status ConnectUnix(const std::string& path, int* fd, int timeout_ms = 2000);

}  // namespace cluster
}  // namespace sssj

#endif  // SSSJ_CLUSTER_CHANNEL_H_
