#include "cluster/channel.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sssj {
namespace cluster {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// Full write, EINTR-safe, SIGPIPE-free.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("socket write");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Full read; EOF mid-message (or at a frame boundary) is kIoError — the
// caller distinguishes "peer closed" by the message text if it cares.
Status ReadAll(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("socket read");
    }
    if (n == 0) return Status::IoError("peer closed the connection");
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status FillSockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    return Status::InvalidArgument(
        "unix socket path must be 1.." +
        std::to_string(sizeof(addr->sun_path) - 1) + " bytes; got \"" + path +
        "\"");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return Status::Ok();
}

}  // namespace

void FrameChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FrameChannel::Send(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::IoError("channel is closed");
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kMaxFramePayload) +
        "-byte cap");
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(type, payload, &frame);
  return WriteAll(fd_, frame.data(), frame.size());
}

Status FrameChannel::Recv(FrameType* type, std::string* payload) {
  if (fd_ < 0) return Status::IoError("channel is closed");
  uint8_t header_bytes[kFrameHeaderSize];
  Status status =
      ReadAll(fd_, reinterpret_cast<char*>(header_bytes), sizeof(header_bytes));
  if (!status.ok()) return status;
  FrameHeader header;
  std::string error;
  if (!DecodeFrameHeader(header_bytes, sizeof(header_bytes), &header,
                         &error)) {
    return Status::DataLoss("bad frame header: " + error);
  }
  payload->resize(header.payload_len);
  if (header.payload_len > 0) {
    status = ReadAll(fd_, payload->data(), header.payload_len);
    if (!status.ok()) return status;
  }
  *type = header.type;
  return Status::Ok();
}

Status FrameChannel::Call(FrameType type, const std::string& payload,
                          Reply* reply) {
  Status status = Send(type, payload);
  if (!status.ok()) return status;
  FrameType reply_type;
  std::string reply_payload;
  status = Recv(&reply_type, &reply_payload);
  if (!status.ok()) return status;
  if (reply_type != FrameType::kReply) {
    return Status::DataLoss(std::string("expected a kReply frame, got ") +
                            cluster::ToString(reply_type));
  }
  return DecodeReply(reply_payload, reply);
}

Status ListenUnix(const std::string& path, int* listen_fd) {
  sockaddr_un addr;
  Status status = FillSockaddr(path, &addr);
  if (!status.ok()) return status;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ::unlink(path.c_str());  // a stale socket file would fail the bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status err = Errno("bind " + path);
    ::close(fd);
    return err;
  }
  if (::listen(fd, 8) < 0) {
    const Status err = Errno("listen " + path);
    ::close(fd);
    return err;
  }
  *listen_fd = fd;
  return Status::Ok();
}

Status AcceptOne(int listen_fd, int* conn_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      *conn_fd = fd;
      return Status::Ok();
    }
    if (errno != EINTR) return Errno("accept");
  }
}

Status ConnectUnix(const std::string& path, int* fd, int timeout_ms) {
  sockaddr_un addr;
  Status status = FillSockaddr(path, &addr);
  if (!status.ok()) return status;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (sock < 0) return Errno("socket");
    if (::connect(sock, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      *fd = sock;
      return Status::Ok();
    }
    const int saved_errno = errno;
    ::close(sock);
    // The server may still be binding; retry until the deadline for the
    // not-there-yet errnos, fail fast for everything else.
    if (saved_errno != ECONNREFUSED && saved_errno != ENOENT) {
      errno = saved_errno;
      return Errno("connect " + path);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      errno = saved_errno;
      return Errno("connect " + path + " (timed out)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace cluster
}  // namespace sssj
