// Cluster supervisor — partitions sessions across forked worker
// processes, forwards calls over the frame protocol, and survives
// worker death with exactly-once pair delivery.
//
// Placement: a session's home worker is RendezvousOwner(name, K) —
// every router instance computes the same owner, and resizing the fleet
// by one slot moves only ~1/K of the sessions. Migrate() overrides the
// home slot for one session: MigrateOut at the source (checkpoint +
// destroy WITHOUT flush) and Restore at the destination move the
// engine's portable SSSJENG3 bytes verbatim, so a migrated session's
// output is bit-identical to one that never moved.
//
// Failover: the supervisor keeps, per session, (a) the latest
// checkpoint bytes and (b) a journal of the encoded mutating request
// payloads (push / batch / flush) completed since that checkpoint.
// Requests are synchronous, so a journaled operation is by definition
// *acked*: its reply — including the pairs it emitted — already reached
// the caller. When a worker channel returns kIoError (the one signal
// for worker death: kill -9, crash, closed pipe), the supervisor reaps
// the corpse, forks a fresh worker on the same slot, restores every
// session homed there from its stored checkpoint, replays each journal
// in order *discarding the replayed replies' pairs* (they were already
// delivered — that discard is the exactly-once rule), and finally
// retries the in-flight request, whose reply is delivered normally.
// Net effect: no pair is lost, no pair is delivered twice, and the
// stream continues from the acked watermark as if the crash never
// happened. Periodic checkpoints (every checkpoint_interval journaled
// ops) bound replay work.
//
// Fork model: workers are forked (no exec) with a socketpair as their
// only link to the supervisor. Fork only happens while the supervisor
// process is single-threaded — the library spawns no threads of its
// own; callers embedding it in threaded programs should Start() before
// spawning threads and serialize calls per Supervisor (every public
// method takes the one internal lock, so concurrent calls are safe but
// not parallel).
#ifndef SSSJ_CLUSTER_SUPERVISOR_H_
#define SSSJ_CLUSTER_SUPERVISOR_H_

#include <sys/types.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/channel.h"
#include "cluster/wire.h"
#include "core/join_service.h"
#include "core/result.h"
#include "core/status.h"
#include "util/thread_annotations.h"

namespace sssj {
namespace cluster {

struct SupervisorOptions {
  // Worker fleet size; fixed for the supervisor's lifetime.
  int num_workers = 2;
  // Refresh a session's stored checkpoint (and truncate its journal)
  // after this many journaled mutating operations. Smaller = cheaper
  // replay after a crash, more checkpoint traffic. 0 = only explicit
  // Checkpoint() calls truncate journals.
  uint64_t checkpoint_interval = 64;
  // Forwarded to each worker's JoinService (num_threads is forced to 1
  // inside the worker regardless).
  JoinServiceOptions worker_service;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorOptions& options = {});
  // Shuts the fleet down (best-effort kShutdown, then reap).
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Forks the fleet and completes the Hello exchange with every worker.
  Status Start() SSSJ_EXCLUDES(mu_);
  // Graceful stop: kShutdown to every live worker, then waitpid. Safe
  // to call twice; the destructor calls it.
  void Shutdown() SSSJ_EXCLUDES(mu_);

  // ---- session API (addressed by name, like ClusterClient) ----
  //
  // Each call forwards one frame to the session's worker. `pairs`
  // (where present, may be null) receives the pairs that THIS call
  // caused the engine to emit, in emission order, bit-exact.
  Status CreateSession(const std::string& name, const WireConfig& config)
      SSSJ_EXCLUDES(mu_);
  Status Push(const std::string& name, Timestamp ts, SparseVector vec,
              std::vector<ResultPair>* pairs) SSSJ_EXCLUDES(mu_);
  // Mirrors JoinService::PushBatch: per-item rejects, accepted count.
  StatusOr<BatchPushResult> PushBatch(const std::string& name,
                                      const Stream& batch,
                                      std::vector<ResultPair>* pairs)
      SSSJ_EXCLUDES(mu_);
  Status Flush(const std::string& name, std::vector<ResultPair>* pairs)
      SSSJ_EXCLUDES(mu_);
  // Final flush + destroy; the name becomes reusable.
  Status CloseSession(const std::string& name, std::vector<ResultPair>* pairs)
      SSSJ_EXCLUDES(mu_);
  // Snapshots the session's checkpoint into the supervisor (truncating
  // its journal) — also the failover restore point.
  Status Checkpoint(const std::string& name) SSSJ_EXCLUDES(mu_);
  StatusOr<SessionWireStats> SessionStats(const std::string& name)
      SSSJ_EXCLUDES(mu_);

  // Moves the session to worker slot `target` (checkpoint bytes travel
  // verbatim; output is bit-identical to never migrating). The session's
  // journal is truncated — the migration checkpoint is the new restore
  // point.
  Status Migrate(const std::string& name, int target) SSSJ_EXCLUDES(mu_);

  // The slot a session currently lives on (kNotFound if unknown).
  StatusOr<int> OwnerOf(const std::string& name) const SSSJ_EXCLUDES(mu_);

  int num_workers() const { return options_.num_workers; }
  // Lifetime count of crash-restarts (not graceful shutdowns).
  uint64_t restarts() const SSSJ_EXCLUDES(mu_);
  // The worker's pid — for tests that kill -9 it.
  StatusOr<pid_t> worker_pid(int slot) const SSSJ_EXCLUDES(mu_);

 private:
  struct WorkerProc {
    pid_t pid = -1;
    FrameChannel channel;
    bool live = false;
  };

  // One journaled mutating request: the frame type + encoded payload,
  // replayed verbatim on failover (replies discarded — already acked).
  struct JournalOp {
    FrameType type;
    std::string payload;
  };

  struct SessionRec {
    WireConfig config;
    int worker = 0;
    std::string checkpoint;  // empty = restore is a fresh CreateSession
    std::vector<JournalOp> journal;
  };

  // Forks slot `slot` and runs the Hello exchange.
  Status SpawnWorker(int slot) SSSJ_REQUIRES(mu_);
  // SIGKILL + reap + refork + restore every session homed on `slot`
  // (checkpoint, then journal replay with pairs discarded).
  Status RecoverWorker(int slot) SSSJ_REQUIRES(mu_);
  // Sends one request; on kIoError runs RecoverWorker and retries once.
  // Any non-transport failure is returned as the reply's status.
  Status CallWorker(int slot, FrameType type, const std::string& payload,
                    Reply* reply) SSSJ_REQUIRES(mu_);
  // Journal bookkeeping after a successful mutating call; may trigger a
  // periodic checkpoint refresh.
  Status JournalOpLocked(const std::string& name, SessionRec* rec,
                         FrameType type, std::string payload)
      SSSJ_REQUIRES(mu_);
  // kCheckpoint to the session's worker; stores the blob, clears the
  // journal.
  Status CheckpointLocked(const std::string& name, SessionRec* rec)
      SSSJ_REQUIRES(mu_);

  const SupervisorOptions options_;

  mutable Mutex mu_;
  bool started_ SSSJ_GUARDED_BY(mu_) = false;
  std::vector<WorkerProc> workers_ SSSJ_GUARDED_BY(mu_);
  // std::map: failover restores sessions in name order — deterministic.
  std::map<std::string, SessionRec> sessions_ SSSJ_GUARDED_BY(mu_);
  uint64_t restarts_ SSSJ_GUARDED_BY(mu_) = 0;
};

// Thin client presenting one Status-based session API over either
// backend, so examples and benches target in-process or cluster
// execution transparently:
//
//   ClusterClient local(JoinServiceOptions{});     // in-process engines
//   ClusterClient remote(&supervisor);             // forked fleet
//   client.CreateSession("news", config);
//   client.Push("news", ts, vec, &pairs);          // same calls either way
//
// Both backends resolve configs through WireConfig::ToEngineConfig(),
// so the in-process and cluster outputs are bit-identical for the same
// stream — the equivalence the cluster tests pin.
class ClusterClient {
 public:
  // In-process backend: a private JoinService, one CollectorSink per
  // session, pairs drained per call exactly like a worker does.
  explicit ClusterClient(const JoinServiceOptions& options);
  // Cluster backend: forwards to a Start()ed supervisor (borrowed; must
  // outlive the client).
  explicit ClusterClient(Supervisor* supervisor);
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  Status CreateSession(const std::string& name, const WireConfig& config);
  Status Push(const std::string& name, Timestamp ts, SparseVector vec,
              std::vector<ResultPair>* pairs);
  StatusOr<BatchPushResult> PushBatch(const std::string& name,
                                      const Stream& batch,
                                      std::vector<ResultPair>* pairs);
  Status Flush(const std::string& name, std::vector<ResultPair>* pairs);
  Status CloseSession(const std::string& name, std::vector<ResultPair>* pairs);
  StatusOr<SessionWireStats> SessionStats(const std::string& name);

 private:
  struct LocalSession {
    JoinService::SessionHandle handle;
    std::unique_ptr<CollectorSink> sink;
  };

  LocalSession* FindLocal(const std::string& name);
  static void DrainLocal(CollectorSink* sink, std::vector<ResultPair>* pairs);

  Supervisor* supervisor_ = nullptr;               // cluster backend
  std::unique_ptr<JoinService> service_;           // in-process backend
  std::map<std::string, LocalSession> locals_;
};

}  // namespace cluster
}  // namespace sssj

#endif  // SSSJ_CLUSTER_SUPERVISOR_H_
