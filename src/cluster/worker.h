// Cluster worker — a JoinService behind a frame-protocol request loop.
//
// One worker process serves the sessions the supervisor routes to it:
// each request frame maps to one JoinService call, and the reply carries
// the pairs that call caused the engine to emit (drained from a
// per-session CollectorSink, bit-exact doubles). That per-request pair
// delivery is what the supervisor's exactly-once failover hangs on: a
// pair is always emitted in the reply of the push that completed it, so
// after a crash the supervisor can replay un-acked operations and
// suppress the pairs of already-acked ones.
//
// Session state never leaves the engine's portable SSSJENG3 checkpoint
// format: kCheckpoint returns those bytes, kMigrateOut returns them and
// destroys the session WITHOUT flushing (the pending MB pairs travel
// inside the bytes), kRestore creates a session and loads them. A
// kRestore whose bytes the engine refuses — truncated, corrupt, or a
// native SSSJENG2 checkpoint that cannot carry the live item set — rolls
// the half-born session back, leaving the worker pristine.
//
// The worker is single-threaded by design: one serve loop, sessions
// forced to num_threads = 1, requests totally ordered per connection.
// Determinism across placements follows — a session's output depends
// only on its WireConfig and its stream, never on which worker ran it.
#ifndef SSSJ_CLUSTER_WORKER_H_
#define SSSJ_CLUSTER_WORKER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "cluster/channel.h"
#include "cluster/wire.h"
#include "core/join_service.h"
#include "core/result.h"
#include "core/status.h"

namespace sssj {
namespace cluster {

struct WorkerOptions {
  // Forwarded to the JoinService, except num_threads is forced to 1 (the
  // worker process is the unit of parallelism in the cluster; engines
  // inside it stay single-threaded so placement never changes output).
  JoinServiceOptions service;
};

class Worker {
 public:
  explicit Worker(const WorkerOptions& options = {});

  // Serves requests on the channel until a kShutdown frame (returns Ok)
  // or a transport failure (returns that kIoError — the supervisor died
  // or closed the pipe; the caller should exit).
  Status Serve(FrameChannel* channel);

  // Dispatches one decoded request and builds its reply. Exposed so
  // tests can drive the full dispatch table without a socket. Sets
  // *shutdown on a kShutdown frame (after which the caller sends the
  // reply and stops).
  Reply Handle(FrameType type, const std::string& payload, bool* shutdown);

  size_t num_sessions() const { return service_.num_sessions(); }

 private:
  struct SessionRec {
    JoinService::SessionHandle handle;
    // Owned here (not adopted by the service) because the worker drains
    // it into every reply; destroyed after the session closes.
    std::unique_ptr<CollectorSink> sink;
  };

  Reply HandleHello(const std::string& payload);
  Reply HandleCreateSession(const std::string& payload);
  Reply HandlePush(const std::string& payload);
  Reply HandlePushBatch(const std::string& payload);
  Reply HandleFlush(const std::string& payload);
  Reply HandleCheckpoint(const std::string& payload);
  Reply HandleRestore(const std::string& payload);
  Reply HandleMigrateOut(const std::string& payload);
  Reply HandleCloseSession(const std::string& payload);
  Reply HandleStats(const std::string& payload);

  // Moves the sink's accumulated pairs into the reply and clears it.
  static void DrainPairs(CollectorSink* sink, Reply* reply);

  SessionRec* Find(const std::string& name);

  JoinService service_;
  std::unordered_map<std::string, SessionRec> sessions_;
};

}  // namespace cluster
}  // namespace sssj

#endif  // SSSJ_CLUSTER_WORKER_H_
