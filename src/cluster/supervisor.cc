#include "cluster/supervisor.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "cluster/worker.h"

namespace sssj {
namespace cluster {

namespace {

Status NoSession(const std::string& name) {
  return Status::NotFound("no session named '" + name + "'");
}

}  // namespace

Supervisor::Supervisor(const SupervisorOptions& options) : options_(options) {}

Supervisor::~Supervisor() { Shutdown(); }

Status Supervisor::Start() {
  MutexLock lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("the supervisor is already started");
  }
  if (options_.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1; got " +
                                   std::to_string(options_.num_workers));
  }
  workers_.resize(static_cast<size_t>(options_.num_workers));
  for (int slot = 0; slot < options_.num_workers; ++slot) {
    Status status = SpawnWorker(slot);
    if (!status.ok()) {
      // Tear the partial fleet down so a failed Start leaks no children.
      for (WorkerProc& w : workers_) {
        if (!w.live) continue;
        w.channel.Close();
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        w.live = false;
      }
      workers_.clear();
      return status;
    }
  }
  started_ = true;
  return Status::Ok();
}

void Supervisor::Shutdown() {
  MutexLock lock(mu_);
  for (WorkerProc& w : workers_) {
    if (!w.live) continue;
    // Best-effort graceful exit; a dead worker just fails the send.
    Reply reply;
    (void)w.channel.Call(FrameType::kShutdown, std::string(), &reply);
    w.channel.Close();
    ::waitpid(w.pid, nullptr, 0);
    w.live = false;
  }
  workers_.clear();
  started_ = false;
}

Status Supervisor::SpawnWorker(int slot) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IoError(std::string("socketpair: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: its only link to the world is its end of the socketpair.
    // Close the parent end and every other worker's supervisor-side
    // channel we inherited, so a sibling's EOF detection still works.
    ::close(fds[0]);
    for (WorkerProc& w : workers_) w.channel.Close();
    {
      FrameChannel channel(fds[1]);
      Worker worker(WorkerOptions{options_.worker_service});
      (void)worker.Serve(&channel);
    }
    // _exit, not exit: the child shares the parent's atexit state and
    // must not run its destructors/flushes.
    ::_exit(0);
  }
  ::close(fds[1]);
  WorkerProc& proc = workers_[static_cast<size_t>(slot)];
  proc.pid = pid;
  proc.channel = FrameChannel(fds[0]);
  proc.live = true;
  // Hello exchange: a protocol mismatch fails fast with a named reason.
  Reply reply;
  Status status = proc.channel.Call(FrameType::kHello,
                                    EncodeHello(HelloPayload{}), &reply);
  if (!status.ok()) return status;
  return reply.status;
}

Status Supervisor::RecoverWorker(int slot) {
  WorkerProc& proc = workers_[static_cast<size_t>(slot)];
  if (proc.live) {
    // The channel reported kIoError; whatever state the process is in,
    // make "dead" true before reaping so waitpid cannot hang.
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, 0);
    proc.channel.Close();
    proc.live = false;
  }
  Status status = SpawnWorker(slot);
  if (!status.ok()) return status;
  ++restarts_;
  // Restore every session homed on this slot, in name order (sessions_
  // is an ordered map) so recovery is deterministic. Each session comes
  // back from its stored checkpoint, then its journal — the mutating
  // requests acked since that checkpoint — replays verbatim with the
  // replies' pairs DISCARDED: those pairs were already delivered, and
  // this discard is exactly what makes failover exactly-once.
  for (auto& [name, rec] : sessions_) {
    if (rec.worker != slot) continue;
    Reply reply;
    if (rec.checkpoint.empty()) {
      CreateSessionRequest req;
      req.name = name;
      req.config = rec.config;
      status = proc.channel.Call(FrameType::kCreateSession,
                                 EncodeCreateSession(req), &reply);
    } else {
      RestoreRequest req;
      req.name = name;
      req.config = rec.config;
      req.checkpoint = rec.checkpoint;
      status =
          proc.channel.Call(FrameType::kRestore, EncodeRestore(req), &reply);
    }
    if (!status.ok()) return status;
    if (!reply.status.ok()) {
      return Status::Internal("failover restore of session '" + name +
                              "' failed: " + reply.status.message());
    }
    for (const JournalOp& op : rec.journal) {
      status = proc.channel.Call(op.type, op.payload, &reply);
      if (!status.ok()) return status;
      if (!reply.status.ok()) {
        return Status::Internal("failover replay for session '" + name +
                                "' failed: " + reply.status.message());
      }
      // reply.pairs dropped on the floor: acked = already delivered.
    }
  }
  return Status::Ok();
}

Status Supervisor::CallWorker(int slot, FrameType type,
                              const std::string& payload, Reply* reply) {
  if (!started_) {
    return Status::FailedPrecondition("the supervisor is not started");
  }
  Status status =
      workers_[static_cast<size_t>(slot)].channel.Call(type, payload, reply);
  if (status.ok()) return status;
  if (status.code() != StatusCode::kIoError) return status;
  // Transport failure = worker death. Refork, restore, replay — then
  // retry the in-flight request exactly once (it was never journaled,
  // so the recovery did not re-run it).
  status = RecoverWorker(slot);
  if (!status.ok()) return status;
  return workers_[static_cast<size_t>(slot)].channel.Call(type, payload,
                                                          reply);
}

Status Supervisor::JournalOpLocked(const std::string& name, SessionRec* rec,
                                   FrameType type, std::string payload) {
  rec->journal.push_back(JournalOp{type, std::move(payload)});
  if (options_.checkpoint_interval > 0 &&
      rec->journal.size() >= options_.checkpoint_interval) {
    // Best-effort: a failed periodic checkpoint must not fail the push
    // that triggered it — the journal simply keeps growing and the next
    // op retries the refresh.
    (void)CheckpointLocked(name, rec);
  }
  return Status::Ok();
}

Status Supervisor::CheckpointLocked(const std::string& name, SessionRec* rec) {
  NameRequest req;
  req.name = name;
  Reply reply;
  Status status =
      CallWorker(rec->worker, FrameType::kCheckpoint, EncodeName(req), &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  rec->checkpoint = std::move(reply.blob);
  rec->journal.clear();
  return Status::Ok();
}

Status Supervisor::CreateSession(const std::string& name,
                                 const WireConfig& config) {
  MutexLock lock(mu_);
  if (sessions_.count(name) != 0) {
    return Status::AlreadyExists("a session named '" + name +
                                 "' already exists");
  }
  SessionRec rec;
  rec.config = config;
  rec.worker = RendezvousOwner(name, options_.num_workers);
  CreateSessionRequest req;
  req.name = name;
  req.config = config;
  Reply reply;
  Status status = CallWorker(rec.worker, FrameType::kCreateSession,
                             EncodeCreateSession(req), &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  sessions_.emplace(name, std::move(rec));
  return Status::Ok();
}

Status Supervisor::Push(const std::string& name, Timestamp ts, SparseVector vec,
                        std::vector<ResultPair>* pairs) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  PushRequest req;
  req.name = name;
  req.ts = ts;
  req.vec = std::move(vec);
  std::string payload = EncodePush(req);
  Reply reply;
  Status status =
      CallWorker(it->second.worker, FrameType::kPush, payload, &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;  // rejected = no mutation
  if (pairs != nullptr) {
    pairs->insert(pairs->end(), reply.pairs.begin(), reply.pairs.end());
  }
  return JournalOpLocked(name, &it->second, FrameType::kPush,
                         std::move(payload));
}

StatusOr<BatchPushResult> Supervisor::PushBatch(const std::string& name,
                                                const Stream& batch,
                                                std::vector<ResultPair>* pairs) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  PushBatchRequest req;
  req.name = name;
  req.items.reserve(batch.size());
  for (const StreamItem& item : batch) {
    req.items.emplace_back(item.ts, item.vec);
  }
  std::string payload = EncodePushBatch(req);
  Reply reply;
  Status status =
      CallWorker(it->second.worker, FrameType::kPushBatch, payload, &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  if (pairs != nullptr) {
    pairs->insert(pairs->end(), reply.pairs.begin(), reply.pairs.end());
  }
  BatchPushResult result;
  result.accepted = reply.accepted;
  result.rejects.reserve(reply.rejects.size());
  for (const auto& [index, reject_status] : reply.rejects) {
    result.rejects.push_back({index, reject_status});
  }
  // Journal even a partially-rejected batch: the accepted items mutated
  // the engine, and a replay re-derives the same rejects.
  status = JournalOpLocked(name, &it->second, FrameType::kPushBatch,
                           std::move(payload));
  if (!status.ok()) return status;
  return result;
}

Status Supervisor::Flush(const std::string& name,
                         std::vector<ResultPair>* pairs) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  NameRequest req;
  req.name = name;
  std::string payload = EncodeName(req);
  Reply reply;
  Status status =
      CallWorker(it->second.worker, FrameType::kFlush, payload, &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  if (pairs != nullptr) {
    pairs->insert(pairs->end(), reply.pairs.begin(), reply.pairs.end());
  }
  // Flush mutates MB window state, so it journals like a push.
  return JournalOpLocked(name, &it->second, FrameType::kFlush,
                         std::move(payload));
}

Status Supervisor::CloseSession(const std::string& name,
                                std::vector<ResultPair>* pairs) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  NameRequest req;
  req.name = name;
  Reply reply;
  Status status = CallWorker(it->second.worker, FrameType::kCloseSession,
                             EncodeName(req), &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  if (pairs != nullptr) {
    pairs->insert(pairs->end(), reply.pairs.begin(), reply.pairs.end());
  }
  sessions_.erase(it);
  return Status::Ok();
}

Status Supervisor::Checkpoint(const std::string& name) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  return CheckpointLocked(name, &it->second);
}

StatusOr<SessionWireStats> Supervisor::SessionStats(const std::string& name) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  NameRequest req;
  req.name = name;
  Reply reply;
  Status status =
      CallWorker(it->second.worker, FrameType::kStats, EncodeName(req), &reply);
  if (!status.ok()) return status;
  if (!reply.status.ok()) return reply.status;
  SessionWireStats stats;
  status = DecodeSessionStats(reply.blob, &stats);
  if (!status.ok()) return status;
  return stats;
}

Status Supervisor::Migrate(const std::string& name, int target) {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  if (target < 0 || target >= options_.num_workers) {
    return Status::OutOfRange("worker slot " + std::to_string(target) +
                              " is outside the fleet of " +
                              std::to_string(options_.num_workers));
  }
  SessionRec& rec = it->second;
  if (rec.worker == target) return Status::Ok();
  const int source = rec.worker;

  // Step 1: checkpoint-and-destroy at the source. MigrateOut does NOT
  // flush — pairs pending in MB windows travel inside the checkpoint
  // bytes and emit at the destination, never twice.
  NameRequest out_req;
  out_req.name = name;
  Reply out_reply;
  Status status = CallWorker(source, FrameType::kMigrateOut,
                             EncodeName(out_req), &out_reply);
  if (!status.ok()) return status;
  if (!out_reply.status.ok()) return out_reply.status;

  // Commit the move before the restore call: if the target dies mid-
  // restore, RecoverWorker (keyed on rec.worker == target) replants the
  // session from this very checkpoint, and the retried restore simply
  // reports kAlreadyExists.
  rec.checkpoint = std::move(out_reply.blob);
  rec.journal.clear();
  rec.worker = target;

  RestoreRequest in_req;
  in_req.name = name;
  in_req.config = rec.config;
  in_req.checkpoint = rec.checkpoint;
  Reply in_reply;
  status =
      CallWorker(target, FrameType::kRestore, EncodeRestore(in_req), &in_reply);
  if (!status.ok()) return status;
  if (in_reply.status.ok() ||
      in_reply.status.code() == StatusCode::kAlreadyExists) {
    return Status::Ok();
  }
  // The destination refused the bytes (should be impossible for a
  // checkpoint we just took). Put the session back where it was so it
  // is not stranded nowhere.
  rec.worker = source;
  Reply back_reply;
  Status back = CallWorker(source, FrameType::kRestore, EncodeRestore(in_req),
                           &back_reply);
  if (!back.ok() ||
      (!back_reply.status.ok() &&
       back_reply.status.code() != StatusCode::kAlreadyExists)) {
    return Status::Internal(
        "migration of '" + name + "' failed (" + in_reply.status.message() +
        ") and the rollback to the source worker also failed");
  }
  return in_reply.status;
}

StatusOr<int> Supervisor::OwnerOf(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = sessions_.find(name);
  if (it == sessions_.end()) return NoSession(name);
  return it->second.worker;
}

uint64_t Supervisor::restarts() const {
  MutexLock lock(mu_);
  return restarts_;
}

StatusOr<pid_t> Supervisor::worker_pid(int slot) const {
  MutexLock lock(mu_);
  if (slot < 0 || slot >= static_cast<int>(workers_.size())) {
    return Status::OutOfRange("worker slot " + std::to_string(slot) +
                              " is outside the fleet");
  }
  return workers_[static_cast<size_t>(slot)].pid;
}

// ---- ClusterClient ----

ClusterClient::ClusterClient(const JoinServiceOptions& options)
    : service_(std::make_unique<JoinService>(options)) {}

ClusterClient::ClusterClient(Supervisor* supervisor)
    : supervisor_(supervisor) {}

ClusterClient::~ClusterClient() = default;

ClusterClient::LocalSession* ClusterClient::FindLocal(const std::string& name) {
  auto it = locals_.find(name);
  return it == locals_.end() ? nullptr : &it->second;
}

void ClusterClient::DrainLocal(CollectorSink* sink,
                               std::vector<ResultPair>* pairs) {
  if (pairs != nullptr) {
    pairs->insert(pairs->end(), sink->pairs().begin(), sink->pairs().end());
  }
  sink->Clear();
}

Status ClusterClient::CreateSession(const std::string& name,
                                    const WireConfig& config) {
  if (supervisor_ != nullptr) return supervisor_->CreateSession(name, config);
  if (FindLocal(name) != nullptr) {
    return Status::AlreadyExists("a session named '" + name +
                                 "' already exists");
  }
  LocalSession local;
  local.sink = std::make_unique<CollectorSink>();
  // The same config resolution a worker applies — the root of the
  // in-process vs cluster bitwise equivalence.
  StatusOr<JoinService::SessionHandle> handle = service_->CreateSession(
      {name, config.ToEngineConfig(), local.sink.get()});
  if (!handle.ok()) return handle.status();
  local.handle = *handle;
  locals_.emplace(name, std::move(local));
  return Status::Ok();
}

Status ClusterClient::Push(const std::string& name, Timestamp ts,
                           SparseVector vec, std::vector<ResultPair>* pairs) {
  if (supervisor_ != nullptr) {
    return supervisor_->Push(name, ts, std::move(vec), pairs);
  }
  LocalSession* local = FindLocal(name);
  if (local == nullptr) return NoSession(name);
  Status status = service_->Push(local->handle, ts, std::move(vec));
  DrainLocal(local->sink.get(), status.ok() ? pairs : nullptr);
  return status;
}

StatusOr<BatchPushResult> ClusterClient::PushBatch(
    const std::string& name, const Stream& batch,
    std::vector<ResultPair>* pairs) {
  if (supervisor_ != nullptr) {
    return supervisor_->PushBatch(name, batch, pairs);
  }
  LocalSession* local = FindLocal(name);
  if (local == nullptr) return NoSession(name);
  StatusOr<BatchPushResult> result = service_->PushBatch(local->handle, batch);
  DrainLocal(local->sink.get(), result.ok() ? pairs : nullptr);
  return result;
}

Status ClusterClient::Flush(const std::string& name,
                            std::vector<ResultPair>* pairs) {
  if (supervisor_ != nullptr) return supervisor_->Flush(name, pairs);
  LocalSession* local = FindLocal(name);
  if (local == nullptr) return NoSession(name);
  Status status = service_->Flush(local->handle);
  DrainLocal(local->sink.get(), status.ok() ? pairs : nullptr);
  return status;
}

Status ClusterClient::CloseSession(const std::string& name,
                                   std::vector<ResultPair>* pairs) {
  if (supervisor_ != nullptr) return supervisor_->CloseSession(name, pairs);
  auto it = locals_.find(name);
  if (it == locals_.end()) return NoSession(name);
  Status status = service_->CloseSession(it->second.handle);
  DrainLocal(it->second.sink.get(), status.ok() ? pairs : nullptr);
  locals_.erase(it);
  return status;
}

StatusOr<SessionWireStats> ClusterClient::SessionStats(
    const std::string& name) {
  if (supervisor_ != nullptr) return supervisor_->SessionStats(name);
  LocalSession* local = FindLocal(name);
  if (local == nullptr) return NoSession(name);
  StatusOr<RunStats> stats = service_->SessionStats(local->handle);
  if (!stats.ok()) return stats.status();
  StatusOr<size_t> memory = service_->SessionMemoryBytes(local->handle);
  if (!memory.ok()) return memory.status();
  SessionWireStats wire_stats;
  wire_stats.vectors_processed = stats->vectors_processed;
  wire_stats.pairs_emitted = stats->pairs_emitted;
  wire_stats.memory_bytes = *memory;
  return wire_stats;
}

}  // namespace cluster
}  // namespace sssj
