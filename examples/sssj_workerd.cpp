// sssj_workerd — a standalone cluster worker on a Unix-domain socket.
//
//   ./sssj_workerd --socket=/tmp/sssj-worker.sock [--spill-dir=DIR]
//                  [--memory-budget-bytes=N]
//
// Runs one sssj::cluster::Worker (a JoinService behind the frame
// protocol) serving whoever connects to the socket path: a router like
// sssj_clusterd, or any client speaking the wire format. One connection
// is served at a time; when a peer disconnects the worker keeps its
// sessions and waits for the next connection, so a restarted router
// re-adopts a live worker's state. A kShutdown frame exits cleanly.
//
// (The in-process Supervisor forks its own workers over socketpairs and
// does not need this binary; sssj_workerd exists for deployments that
// manage worker processes themselves.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/channel.h"
#include "cluster/worker.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  sssj::cluster::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--socket", &value)) {
      socket_path = value;
    } else if (ParseFlag(argv[i], "--spill-dir", &value)) {
      options.service.spill_dir = value;
    } else if (ParseFlag(argv[i], "--memory-budget-bytes", &value)) {
      options.service.memory_budget_bytes =
          static_cast<size_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: sssj_workerd --socket=PATH [--spill-dir=DIR] "
                   "[--memory-budget-bytes=N]\n");
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "sssj_workerd: --socket=PATH is required\n");
    return 2;
  }

  int listen_fd = -1;
  sssj::Status status = sssj::cluster::ListenUnix(socket_path, &listen_fd);
  if (!status.ok()) {
    std::fprintf(stderr, "sssj_workerd: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "sssj_workerd: serving on %s\n", socket_path.c_str());

  sssj::cluster::Worker worker(options);
  for (;;) {
    int conn_fd = -1;
    status = sssj::cluster::AcceptOne(listen_fd, &conn_fd);
    if (!status.ok()) {
      std::fprintf(stderr, "sssj_workerd: %s\n", status.ToString().c_str());
      return 1;
    }
    sssj::cluster::FrameChannel channel(conn_fd);
    status = worker.Serve(&channel);
    if (status.ok()) break;  // kShutdown — exit cleanly
    // Peer disconnected: keep our sessions, await the next connection.
    std::fprintf(stderr, "sssj_workerd: connection ended (%s); waiting\n",
                 status.message().c_str());
  }
  std::fprintf(stderr, "sssj_workerd: shutdown\n");
  return 0;
}
