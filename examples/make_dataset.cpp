// Dataset generator tool: materialize any of the four synthetic dataset
// profiles (Table 1 counterparts) — or a fully custom corpus — as a stream
// file for use with sssj_cli / text2bin.
//
//   ./examples/make_dataset --profile=RCV1 --scale=1 --out=rcv1.txt
//   ./examples/make_dataset --profile=Tweets --format=bin --out=tweets.bin
//   ./examples/make_dataset --custom --n=5000 --dims=20000 --nnz=40
//       --dup-rate=0.05 --arrivals=poisson --out=custom.txt  (one line)
#include <cstdio>
#include <string>

#include "data/generator.h"
#include "data/io.h"
#include "data/profiles.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out=<path> is required\n");
    return 1;
  }

  sssj::CorpusSpec spec;
  if (flags.GetBool("custom", false)) {
    spec.num_vectors = static_cast<uint64_t>(flags.GetInt("n", 5000));
    spec.num_dims = static_cast<uint64_t>(flags.GetInt("dims", 20000));
    spec.avg_nnz = flags.GetDouble("nnz", 40);
    spec.zipf_exponent = flags.GetDouble("zipf", 1.05);
    spec.near_dup_rate = flags.GetDouble("dup-rate", 0.05);
    spec.near_dup_noise = flags.GetDouble("dup-noise", 0.1);
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    const std::string arrivals = flags.GetString("arrivals", "sequential");
    if (arrivals == "poisson") {
      spec.arrivals.kind = sssj::ArrivalModel::Kind::kPoisson;
    } else if (arrivals == "bursty") {
      spec.arrivals.kind = sssj::ArrivalModel::Kind::kBursty;
    } else {
      spec.arrivals.kind = sssj::ArrivalModel::Kind::kSequential;
    }
    spec.arrivals.rate = flags.GetDouble("rate", 1.0);
  } else {
    sssj::DatasetProfile profile;
    if (!sssj::ParseProfile(flags.GetString("profile", "RCV1"), &profile)) {
      std::fprintf(stderr,
                   "unknown --profile (WebSpam|RCV1|Blogs|Tweets), or pass "
                   "--custom\n");
      return 1;
    }
    spec = sssj::MakeProfileSpec(profile, flags.GetDouble("scale", 1.0),
                                 static_cast<uint64_t>(flags.GetInt("seed", 42)));
  }

  sssj::CorpusGenerator gen(spec);
  const sssj::Stream stream = gen.Generate();

  std::string format = flags.GetString("format", "");
  if (format.empty()) {
    format = out.size() > 4 && out.substr(out.size() - 4) == ".bin" ? "bin"
                                                                    : "text";
  }
  const sssj::Status status = format == "bin"
                                  ? sssj::WriteBinaryStream(stream, out)
                                  : sssj::WriteTextStream(stream, out);
  if (!status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  uint64_t nnz = 0;
  for (const auto& item : stream) nnz += item.vec.nnz();
  std::fprintf(stderr,
               "wrote %zu vectors (%llu non-zeros, span %.1f time units) "
               "to %s [%s]\n",
               stream.size(), static_cast<unsigned long long>(nnz),
               stream.empty() ? 0.0 : stream.back().ts - stream.front().ts,
               out.c_str(), format.c_str());
  return 0;
}
