// sssj_cli — run a streaming similarity self-join over a stream file,
// mirroring the original project's command-line entry point.
//
//   ./examples/sssj_cli --input=stream.txt --theta=0.7 --lambda=0.01
//   ./examples/sssj_cli --input=stream.bin --format=bin --framework=MB
//       --index=L2AP --output=pairs.txt --quiet   (single command line)
//
// Flags:
//   --input=<path>       stream file (required)
//   --format=text|bin    input format (default: by .bin extension)
//   --framework=STR|MB   (default STR)
//   --index=INV|AP|L2AP|L2|AUTO
//                        (default L2; AP only valid with MB). AUTO runs
//                        the set-dueling adaptive scheme: the engine
//                        starts on L2, periodically replays a reservoir
//                        sample of the live stream through cheap shadow
//                        cores of the competing schemes, and migrates
//                        live (over the portable checkpoint path) to
//                        whichever combination wins repeatedly. Duel
//                        verdicts and scheme switches print on stderr.
//   --duel-epoch=<n>     AUTO only: accepted items per duel epoch
//                        (default 2048; must be >= 1)
//   --theta, --lambda    join parameters (defaults 0.7, 0.01)
//   --kernel=scalar|simd|auto
//                        scoring kernels for the hot posting scans
//                        (default scalar = the bit-exact reference path).
//                        simd vectorizes the decay/product/dot kernels:
//                        MB and STR-INV output is bit-identical to
//                        scalar; STR-L2/L2AP scores agree within 1e-9
//                        relative. auto picks simd when the CPU has a
//                        vector ISA (AVX2/SSE2/NEON).
//   --threads=<n>        worker threads for the parallel hot paths
//                        (default 1 = sequential). STR-L2: the sharded
//                        index — same pair set and scores, but line order
//                        in --output may differ across thread counts.
//                        Any MB scheme: the window-close query fan-out —
//                        output is bit-identical for every thread count.
//                        STR-INV/STR-L2AP ignore it.
//   --output=<path>      write pairs as "a b t_a t_b dot sim" (default:
//                        stdout)
//   --quiet              suppress per-pair output on stdout; pairs still
//                        go to --output when one is given (stats are on
//                        stderr either way)
//   --min-dot=<v>        sink pipeline: drop pairs whose raw cosine is
//                        below v before writing (FilterSink stage)
//   --top-k=<k>          sink pipeline: also report the k best pairs by
//                        decayed similarity at the end (TopKSink stage)
//   --memory             also print the live footprint after the run
//                        (STR: posting columns + residual store; MB:
//                        buffered windows + peak window-index bytes)
//   --async              ingest through the async pipeline: the reader
//                        thread enqueues into a bounded lock-free queue
//                        and a pump thread drains epochs through the
//                        same sequential push path — output is
//                        bit-identical to the inline run; ingest-layer
//                        counters (epochs, queue depth high-water,
//                        backpressure) print on stderr
//   --queue-capacity=<n> async queue bound in items (default 4096;
//                        rounded up to a power of two)
//   --epoch-items=<n>    close an epoch after n queued items
//                        (default 256)
//   --submit=try|block|timeout
//                        what AsyncPush does at the high-water mark
//                        (default block; try surfaces
//                        RESOURCE_EXHAUSTED rejects on stderr)
//   --tiered             enable tiered posting storage: cold posting
//                        prefixes freeze into immutable blocks
//                        (compressed for rarely scanned lists, raw
//                        zero-copy for hot ones) so the live footprint
//                        drops; exact-tier output is bit-identical to
//                        the untiered run
//   --value-tier=exact|bf16|f16
//                        precision of the frozen value/prefix_norm
//                        columns (implies --tiered). exact reproduces
//                        the mutable columns bit for bit; bf16/f16
//                        halve the frozen value bytes at quantized
//                        score precision (see ARCHITECTURE.md)
//   --checkpoint-in=<path>
//                        restore engine state from a checkpoint before
//                        pushing the stream (STR-L2 single-threaded
//                        native format; --index=AUTO engines read and
//                        write the portable format instead, any scheme).
//                        A corrupt, truncated, or mismatched file exits
//                        with status 2 and a message naming what was
//                        wrong — it never runs the join on partial state
//   --checkpoint-out=<path>
//                        save a checkpoint of the final engine state
//                        after the run (same restrictions)
//   --memory-budget=<bytes>
//                        run the join as a JoinService session with a
//                        service-wide memory cap: pushes that would run
//                        while the footprint is over budget are refused
//                        with RESOURCE_EXHAUSTED (reported on stderr)
//                        instead of growing without bound; pair output
//                        for accepted items is identical to the
//                        unbudgeted run. Incompatible with --async.
//
// Unknown flags are an error (exit 2): a typo like --thta=0.9 must not
// silently run with the default.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/join_service.h"
#include "core/sinks.h"
#include "data/io.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  flags.RejectUnknown(
      {"input", "format", "framework", "index", "theta", "lambda", "kernel",
       "threads", "output", "quiet", "min-dot", "top-k", "memory", "async",
       "queue-capacity", "epoch-items", "submit", "tiered", "value-tier",
       "memory-budget", "checkpoint-in", "checkpoint-out", "duel-epoch"});
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required (see header of this file)\n");
    return 1;
  }

  sssj::EngineConfig config;
  const auto framework =
      sssj::ParseFramework(flags.GetString("framework", "STR"));
  const auto index = sssj::ParseIndexScheme(flags.GetString("index", "L2"));
  if (!framework.ok() || !index.ok()) {
    const sssj::Status& bad = !framework.ok() ? framework.status()
                                              : index.status();
    std::fprintf(stderr, "%s\n", bad.ToString().c_str());
    return 1;
  }
  config.framework = *framework;
  config.index = *index;
  config.theta = flags.GetDouble("theta", 0.7);
  config.lambda = flags.GetDouble("lambda", 0.01);
  config.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  const bool auto_scheme = config.index == sssj::IndexScheme::kAuto;
  if (flags.Has("duel-epoch")) {
    if (!auto_scheme) {
      std::fprintf(stderr, "--duel-epoch requires --index=AUTO\n");
      return 2;
    }
    // GetInt already exits 2 on malformed values; this rejects the ones
    // that parse but make no sense for an epoch length.
    const int64_t duel_epoch = flags.GetInt("duel-epoch", 0);
    if (duel_epoch < 1) {
      std::fprintf(stderr,
                   "invalid value for --duel-epoch: %lld (expected >= 1)\n",
                   static_cast<long long>(duel_epoch));
      return 2;
    }
    config.adaptive.duel_epoch_items = static_cast<uint64_t>(duel_epoch);
  }
  if (auto_scheme) {
    config.adaptive.on_verdict = [](const sssj::DuelVerdict& v) {
      std::fprintf(stderr, "%s\n", v.ToString().c_str());
    };
  }
  const bool async = flags.GetBool("async", false);
  if (async) {
    config.ingest.mode = sssj::IngestMode::kAsync;
    config.ingest.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue-capacity", 4096));
    config.ingest.epoch_max_items =
        static_cast<size_t>(flags.GetInt("epoch-items", 256));
    const std::string submit = flags.GetString("submit", "block");
    if (submit == "try") {
      config.ingest.submit = sssj::SubmitPolicy::kTry;
    } else if (submit == "block") {
      config.ingest.submit = sssj::SubmitPolicy::kBlock;
    } else if (submit == "timeout") {
      config.ingest.submit = sssj::SubmitPolicy::kTimeout;
    } else {
      std::fprintf(stderr,
                   "invalid value for --submit: '%s' (expected try, block, "
                   "or timeout)\n",
                   submit.c_str());
      return 2;
    }
  } else if (flags.Has("queue-capacity") || flags.Has("epoch-items") ||
             flags.Has("submit")) {
    std::fprintf(stderr,
                 "--queue-capacity/--epoch-items/--submit require --async\n");
    return 2;
  }
  if (flags.Has("kernel")) {
    // GetString's default would mask a bare `--kernel` (no value) as the
    // scalar default — the silent-fallback class this flag guards against.
    const std::string kernel_str = flags.GetString("kernel", "");
    if (!sssj::ParseKernelMode(kernel_str, &config.kernel)) {
      std::fprintf(stderr,
                   "invalid value for --kernel: '%s' (expected scalar, "
                   "simd, or auto)\n",
                   kernel_str.c_str());
      return 2;
    }
  }
  config.tiered.enabled = flags.GetBool("tiered", false);
  if (flags.Has("value-tier")) {
    // Same silent-fallback guard as --kernel: a bare `--value-tier` must
    // error out, not quietly run at the exact default.
    const std::string tier_str = flags.GetString("value-tier", "");
    const auto tier = sssj::ParseValueTier(tier_str);
    if (!tier.ok()) {
      std::fprintf(stderr,
                   "invalid value for --value-tier: '%s' (expected exact, "
                   "bf16, or f16)\n",
                   tier_str.c_str());
      return 2;
    }
    config.tiered.value_tier = *tier;
    config.tiered.enabled = true;  // a tier choice implies tiering
  }
  const int64_t budget_raw = flags.GetInt("memory-budget", 0);
  if (budget_raw < 0) {
    std::fprintf(stderr,
                 "invalid value for --memory-budget: %lld (expected bytes "
                 ">= 0; 0 = unlimited)\n",
                 static_cast<long long>(budget_raw));
    return 2;
  }
  const size_t memory_budget = static_cast<size_t>(budget_raw);
  if (memory_budget > 0 && async) {
    std::fprintf(stderr, "--memory-budget is incompatible with --async\n");
    return 2;
  }
  // Same silent-fallback guard as --kernel: a bare `--checkpoint-in` must
  // not quietly run without restoring anything.
  const std::string checkpoint_in = flags.GetString("checkpoint-in", "");
  const std::string checkpoint_out = flags.GetString("checkpoint-out", "");
  if ((flags.Has("checkpoint-in") && checkpoint_in.empty()) ||
      (flags.Has("checkpoint-out") && checkpoint_out.empty())) {
    std::fprintf(stderr, "--checkpoint-in/--checkpoint-out need a path\n");
    return 2;
  }
  if ((!checkpoint_in.empty() || !checkpoint_out.empty()) &&
      memory_budget > 0) {
    std::fprintf(stderr,
                 "--checkpoint-in/--checkpoint-out are incompatible with "
                 "--memory-budget (checkpoints address the engine directly)\n");
    return 2;
  }

  std::string format = flags.GetString("format", "");
  if (format.empty()) {
    format = input.size() > 4 && input.substr(input.size() - 4) == ".bin"
                 ? "bin"
                 : "text";
  }
  sssj::Stream stream;
  const sssj::Status read_status =
      format == "bin" ? sssj::ReadBinaryStream(input, &stream)
                      : sssj::ReadTextStream(input, &stream);
  if (!read_status.ok()) {
    std::fprintf(stderr, "failed to read %s: %s\n", input.c_str(),
                 read_status.ToString().c_str());
    return 1;
  }

  const bool quiet = flags.GetBool("quiet", false);
  const std::string output = flags.GetString("output", "");
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!output.empty()) {
    out_file.open(output);
    if (!out_file) {
      std::fprintf(stderr, "cannot open %s\n", output.c_str());
      return 1;
    }
    out = &out_file;
  }

  // --quiet silences the default stdout pair listing, but an explicit
  // --output file always receives the pairs: "quiet scripting" runs used
  // to produce a silently empty output file.
  const bool write_pairs = !quiet || out != &std::cout;
  uint64_t pairs = 0;
  sssj::CallbackSink writer([&](const sssj::ResultPair& p) {
    ++pairs;
    if (write_pairs) {
      (*out) << p.a << ' ' << p.b << ' ' << p.ta << ' ' << p.tb << ' '
             << p.dot << ' ' << p.sim << '\n';
    }
  });

  // Sink pipeline, innermost first: writer ← [tee → top-k] ← [min-dot
  // filter]. The engine sees a single ResultSink regardless of the chain.
  const int64_t top_k_raw = flags.GetInt("top-k", 0);
  if (top_k_raw < 0) {
    std::fprintf(stderr, "invalid value for --top-k: %lld (expected >= 0)\n",
                 static_cast<long long>(top_k_raw));
    return 2;
  }
  const size_t top_k = static_cast<size_t>(top_k_raw);
  sssj::TopKSink best(top_k);
  sssj::TeeSink tee({&writer});
  if (top_k > 0) tee.Add(&best);
  sssj::ResultSink* sink = &tee;
  const double min_dot = flags.GetDouble("min-dot", 0.0);
  sssj::FilterSink filter(
      [min_dot](const sssj::ResultPair& p) { return p.dot >= min_dot; }, &tee);
  if (min_dot > 0.0) sink = &filter;

  // Async runs surface per-item rejects through the completion callback
  // (tickets are dense submit order, so a ticket IS the item index here).
  std::mutex rejects_mu;
  std::vector<std::pair<uint64_t, sssj::Status>> async_rejects;
  size_t async_accepted = 0;
  if (async) {
    config.ingest.on_complete = [&](uint64_t ticket,
                                    const sssj::Status& status) {
      std::lock_guard<std::mutex> lock(rejects_mu);
      if (status.ok()) {
        ++async_accepted;
      } else {
        async_rejects.emplace_back(ticket, status);
      }
    };
  }

  // Budgeted runs go through a single-session JoinService so the
  // service-wide budget gate applies; unbudgeted runs keep the direct
  // engine (identical push path, no session lock).
  sssj::JoinServiceOptions service_opts;
  service_opts.memory_budget_bytes = memory_budget;
  sssj::JoinService service(service_opts);
  sssj::JoinService::SessionHandle session;
  std::unique_ptr<sssj::SssjEngine> engine;
  if (memory_budget > 0) {
    auto session_or = service.CreateSession({"cli", config, sink});
    if (!session_or.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n",
                   session_or.status().ToString().c_str());
      return 1;
    }
    session = *session_or;
  } else {
    auto engine_or = sssj::SssjEngine::Make(config, sink);
    if (!engine_or.ok()) {
      std::fprintf(stderr, "invalid configuration: %s\n",
                   engine_or.status().ToString().c_str());
      return 1;
    }
    engine = *std::move(engine_or);
    // Knobs the chosen configuration accepts but ignores (e.g. --threads
    // under STR-INV) are silently-dropped settings; surface them.
    for (const std::string& note : engine->configuration_notes()) {
      std::fprintf(stderr, "note: %s\n", note.c_str());
    }
  }

  if (!checkpoint_in.empty()) {
    // A bad checkpoint must stop the run outright: LoadCheckpoint swaps
    // state in only on success, so there is no partial restore to limp
    // along on — but pushing the stream into a fresh engine while the
    // user believes state was restored would silently produce the wrong
    // join. Status already names the file, offset, and defect.
    const sssj::Status st = engine->LoadCheckpoint(checkpoint_in);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot restore --checkpoint-in: %s\n",
                   st.ToString().c_str());
      return 2;
    }
  }

  sssj::Timer timer;
  size_t accepted = 0;
  uint64_t budget_refused = 0;
  if (async) {
    for (const sssj::StreamItem& item : stream) {
      const sssj::Status status = engine->AsyncPush(item.ts, item.vec);
      if (!status.ok()) {
        // Submit-side failure (backpressure under --submit=try/timeout);
        // distinct from the per-item validation rejects below.
        std::fprintf(stderr, "submit rejected: %s\n",
                     status.ToString().c_str());
      }
    }
    engine->Drain();
    engine->Flush();
    accepted = async_accepted;
    for (const auto& [ticket, status] : async_rejects) {
      std::fprintf(stderr, "item %llu rejected: %s\n",
                   static_cast<unsigned long long>(ticket),
                   status.ToString().c_str());
    }
  } else if (memory_budget > 0) {
    // Per-item pushes so each refusal is attributable: a budget refusal
    // (RESOURCE_EXHAUSTED) is backpressure, not a bad item.
    size_t index = 0;
    for (const sssj::StreamItem& item : stream) {
      const sssj::Status status = service.Push(session, item.ts, item.vec);
      if (status.ok()) {
        ++accepted;
      } else if (status.code() == sssj::StatusCode::kResourceExhausted) {
        ++budget_refused;
      } else {
        std::fprintf(stderr, "item %zu rejected: %s\n", index,
                     status.ToString().c_str());
      }
      ++index;
    }
    service.Flush(session);
  } else {
    const sssj::BatchPushResult pushed = engine->PushBatch(stream);
    engine->Flush();
    accepted = pushed.accepted;
    for (const auto& reject : pushed.rejects) {
      std::fprintf(stderr, "item %zu rejected: %s\n", reject.index,
                   reject.status.ToString().c_str());
    }
  }
  const double secs = timer.ElapsedSeconds();

  if (!checkpoint_out.empty()) {
    const sssj::Status st = engine->SaveCheckpoint(checkpoint_out);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write --checkpoint-out: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  sssj::RunStats s;
  double tau = 0.0;
  if (memory_budget > 0) {
    const auto stats_or = service.SessionStats(session);
    if (stats_or.ok()) s = *stats_or;
    sssj::DecayParams params;
    sssj::DecayParams::Make(config.theta, config.lambda, &params);
    tau = params.tau;
  } else {
    s = engine->stats();
    tau = engine->params().tau;
  }
  std::fprintf(stderr,
               "%s-%s theta=%.3f lambda=%.4g tau=%.4g kernel=%s: "
               "%zu vectors (%zu accepted), %llu pairs, %.3fs (%.0f vec/s)\n",
               sssj::ToString(config.framework), sssj::ToString(config.index),
               config.theta, config.lambda, tau,
               sssj::ToString(config.kernel), stream.size(), accepted,
               static_cast<unsigned long long>(pairs), secs,
               stream.size() / std::max(secs, 1e-9));
  std::fprintf(stderr, "stats: %s\n", s.ToString().c_str());
  if (engine != nullptr && (auto_scheme || engine->scheme_switches() > 0)) {
    std::fprintf(stderr, "adaptive: active=%s-%s switches=%llu\n",
                 sssj::ToString(engine->active_framework()),
                 sssj::ToString(engine->active_scheme()),
                 static_cast<unsigned long long>(engine->scheme_switches()));
  }
  if (async) {
    std::fprintf(stderr, "ingest: %s\n",
                 engine->ingest_stats().ToString().c_str());
  }
  if (min_dot > 0.0) {
    std::fprintf(stderr,
                 "min-dot filter: %llu pairs passed, %llu dropped\n",
                 static_cast<unsigned long long>(filter.passed()),
                 static_cast<unsigned long long>(filter.dropped()));
  }
  if (top_k > 0) {
    std::fprintf(stderr, "top-%zu pairs by decayed similarity:\n", top_k);
    for (const sssj::ResultPair& p : best.TopPairs()) {
      std::fprintf(stderr, "  %llu %llu sim=%.6f dot=%.6f\n",
                   static_cast<unsigned long long>(p.a),
                   static_cast<unsigned long long>(p.b), p.sim, p.dot);
    }
  }
  if (memory_budget > 0) {
    std::fprintf(stderr,
                 "budget: %zu byte cap, %llu pushes refused "
                 "(RESOURCE_EXHAUSTED)\n",
                 memory_budget,
                 static_cast<unsigned long long>(budget_refused));
  }
  if (flags.GetBool("memory", false)) {
    size_t bytes = 0;
    if (memory_budget > 0) {
      const auto bytes_or = service.SessionMemoryBytes(session);
      if (bytes_or.ok()) bytes = *bytes_or;
    } else {
      bytes = engine->MemoryBytes();
    }
    std::fprintf(stderr, "memory: %zu bytes (%.2f MB) across %llu live entries\n",
                 bytes, bytes / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(
                     s.entries_indexed - s.entries_pruned));
  }
  return 0;
}
