// sssj_cli — run a streaming similarity self-join over a stream file,
// mirroring the original project's command-line entry point.
//
//   ./examples/sssj_cli --input=stream.txt --theta=0.7 --lambda=0.01
//   ./examples/sssj_cli --input=stream.bin --format=bin --framework=MB
//       --index=L2AP --output=pairs.txt --quiet   (single command line)
//
// Flags:
//   --input=<path>       stream file (required)
//   --format=text|bin    input format (default: by .bin extension)
//   --framework=STR|MB   (default STR)
//   --index=INV|AP|L2AP|L2  (default L2; AP only valid with MB)
//   --theta, --lambda    join parameters (defaults 0.7, 0.01)
//   --kernel=scalar|simd|auto
//                        scoring kernels for the hot posting scans
//                        (default scalar = the bit-exact reference path).
//                        simd vectorizes the decay/product/dot kernels:
//                        MB and STR-INV output is bit-identical to
//                        scalar; STR-L2/L2AP scores agree within 1e-9
//                        relative. auto picks simd when the CPU has a
//                        vector ISA (AVX2/SSE2/NEON).
//   --threads=<n>        worker threads for the parallel hot paths
//                        (default 1 = sequential). STR-L2: the sharded
//                        index — same pair set and scores, but line order
//                        in --output may differ across thread counts.
//                        Any MB scheme: the window-close query fan-out —
//                        output is bit-identical for every thread count.
//                        STR-INV/STR-L2AP ignore it.
//   --output=<path>      write pairs as "a b t_a t_b dot sim" (default:
//                        stdout)
//   --quiet              suppress per-pair output on stdout; pairs still
//                        go to --output when one is given (stats are on
//                        stderr either way)
//   --memory             also print the live footprint after the run
//                        (STR: posting columns + residual store; MB:
//                        buffered windows + peak window-index bytes)
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/engine.h"
#include "data/io.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  const std::string input = flags.GetString("input", "");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required (see header of this file)\n");
    return 1;
  }

  sssj::EngineConfig config;
  if (!sssj::ParseFramework(flags.GetString("framework", "STR"),
                            &config.framework) ||
      !sssj::ParseIndexScheme(flags.GetString("index", "L2"),
                              &config.index)) {
    std::fprintf(stderr, "unknown --framework or --index\n");
    return 1;
  }
  config.theta = flags.GetDouble("theta", 0.7);
  config.lambda = flags.GetDouble("lambda", 0.01);
  config.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  if (flags.Has("kernel")) {
    // GetString's default would mask a bare `--kernel` (no value) as the
    // scalar default — the silent-fallback class this PR stamps out.
    const std::string kernel_str = flags.GetString("kernel", "");
    if (!sssj::ParseKernelMode(kernel_str, &config.kernel)) {
      std::fprintf(stderr,
                   "invalid value for --kernel: '%s' (expected scalar, "
                   "simd, or auto)\n",
                   kernel_str.c_str());
      return 2;
    }
  }
  auto engine = sssj::SssjEngine::Create(config);
  if (engine == nullptr) {
    std::fprintf(stderr,
                 "invalid configuration (theta in (0,1]? lambda >= 0? "
                 "STR-AP is unsupported)\n");
    return 1;
  }

  std::string format = flags.GetString("format", "");
  if (format.empty()) {
    format = input.size() > 4 && input.substr(input.size() - 4) == ".bin"
                 ? "bin"
                 : "text";
  }
  sssj::Stream stream;
  std::string error;
  const bool ok = format == "bin"
                      ? sssj::ReadBinaryStream(input, &stream, {}, &error)
                      : sssj::ReadTextStream(input, &stream, {}, &error);
  if (!ok) {
    std::fprintf(stderr, "failed to read %s: %s\n", input.c_str(),
                 error.c_str());
    return 1;
  }

  const bool quiet = flags.GetBool("quiet", false);
  const std::string output = flags.GetString("output", "");
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (!output.empty()) {
    out_file.open(output);
    if (!out_file) {
      std::fprintf(stderr, "cannot open %s\n", output.c_str());
      return 1;
    }
    out = &out_file;
  }

  // --quiet silences the default stdout pair listing, but an explicit
  // --output file always receives the pairs: "quiet scripting" runs used
  // to produce a silently empty output file.
  const bool write_pairs = !quiet || out != &std::cout;
  uint64_t pairs = 0;
  sssj::CallbackSink sink([&](const sssj::ResultPair& p) {
    ++pairs;
    if (write_pairs) {
      (*out) << p.a << ' ' << p.b << ' ' << p.ta << ' ' << p.tb << ' '
             << p.dot << ' ' << p.sim << '\n';
    }
  });

  sssj::Timer timer;
  engine->PushBatch(stream, &sink);
  engine->Flush(&sink);
  const double secs = timer.ElapsedSeconds();

  const sssj::RunStats& s = engine->stats();
  std::fprintf(stderr,
               "%s-%s theta=%.3f lambda=%.4g tau=%.4g kernel=%s: "
               "%zu vectors, %llu pairs, %.3fs (%.0f vec/s)\n",
               sssj::ToString(config.framework), sssj::ToString(config.index),
               config.theta, config.lambda, engine->params().tau,
               sssj::ToString(config.kernel), stream.size(),
               static_cast<unsigned long long>(pairs), secs,
               stream.size() / std::max(secs, 1e-9));
  std::fprintf(stderr, "stats: %s\n", s.ToString().c_str());
  if (flags.GetBool("memory", false)) {
    const size_t bytes = engine->MemoryBytes();
    std::fprintf(stderr, "memory: %zu bytes (%.2f MB) across %llu live entries\n",
                 bytes, bytes / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(
                     s.entries_indexed - s.entries_pruned));
  }
  return 0;
}
