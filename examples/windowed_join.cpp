// Classic sliding-window similarity join via the generalized-decay
// extension: DecayFunction::SlidingWindow turns the STR-L2 machinery into
// "report every pair with cosine ≥ θ arriving within W time units", with
// full ℓ2 content pruning — no similarity decay inside the window.
//
//   ./examples/windowed_join [--window=60] [--theta=0.8] [--posts=2000]
//
// Compares the three decay families at the same horizon on one stream, to
// make the semantic difference concrete.
#include <cstdio>

#include "core/sinks.h"
#include "data/generator.h"
#include "index/decayed_stream_index.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  const double window = flags.GetDouble("window", 60.0);
  const double theta = flags.GetDouble("theta", 0.8);
  const int n = static_cast<int>(flags.GetInt("posts", 2000));

  sssj::CorpusSpec spec;
  spec.num_vectors = n;
  spec.num_dims = 20000;
  spec.avg_nnz = 15;
  spec.near_dup_rate = 0.12;
  spec.arrivals.kind = sssj::ArrivalModel::Kind::kPoisson;
  spec.arrivals.rate = 1.0;
  spec.seed = 3;
  const sssj::Stream stream = sssj::CorpusGenerator(spec).Generate();

  // Three decay families calibrated to the same horizon `window`.
  const double lambda = std::log(1.0 / theta) / window;
  const double alpha = 2.0;
  const double scale = window / (std::pow(theta, -1.0 / alpha) - 1.0);
  struct Family {
    const char* label;
    sssj::DecayFunction f;
  };
  const Family families[] = {
      {"sliding-window", sssj::DecayFunction::SlidingWindow(window)},
      {"exponential", sssj::DecayFunction::Exponential(lambda)},
      {"polynomial", sssj::DecayFunction::Polynomial(alpha, scale)},
  };

  std::printf("windowed join over %d posts, horizon=%.0f, theta=%.2f\n", n,
              window, theta);
  std::printf("%-16s %8s %12s %12s  %s\n", "decay", "pairs", "entries",
              "full_dots", "best pair (sim)");
  for (const Family& fam : families) {
    sssj::GeneralDecayL2Index index(theta, fam.f);
    // Sink chain: count everything, and keep the single best pair — one
    // TeeSink bound once, instead of re-plumbing sinks per use case.
    sssj::CountingSink counter;
    sssj::TopKSink best(1);
    sssj::TeeSink sink({&counter, &best});
    for (const sssj::StreamItem& item : stream) {
      index.ProcessArrival(item, &sink);
    }
    const auto top = best.TopPairs();
    char best_buf[64] = "-";
    if (!top.empty()) {
      std::snprintf(best_buf, sizeof(best_buf), "#%llu ~ #%llu (%.3f)",
                    static_cast<unsigned long long>(top[0].a),
                    static_cast<unsigned long long>(top[0].b), top[0].sim);
    }
    std::printf("%-16s %8llu %12llu %12llu  %s\n", fam.label,
                static_cast<unsigned long long>(counter.count()),
                static_cast<unsigned long long>(
                    index.stats().entries_traversed),
                static_cast<unsigned long long>(index.stats().full_dots),
                best_buf);
  }
  std::printf(
      "(same horizon: the window family keeps every in-horizon pair with "
      "cosine >= theta;\n the decaying families additionally require "
      "recency — pairs drop as the gap grows)\n");
  return 0;
}
