// Near-duplicate item filtering — the paper's second motivating
// application (§1): when an event happens, feeds fill up with near-copies
// of the same post; grouping/suppressing them improves the experience.
//
// This example runs a live deduplication pipeline over a simulated message
// stream: raw text → online TF-IDF vectorization → STR-L2 join → suppress
// any message similar (content + time) to a recently shown one.
//
//   ./examples/near_duplicate_filter [--messages=400] [--theta=0.75]
//                                    [--tau=30]
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "data/text.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

// A tiny newsroom simulator: a few breaking stories, each phrased with
// small variations (retweets, copy-edits), interleaved with unique chatter.
std::vector<std::pair<double, std::string>> SimulateFeed(int n,
                                                         sssj::Rng& rng) {
  const std::vector<std::vector<std::string>> stories = {
      {"breaking earthquake magnitude seven hits coastal city",
       "earthquake magnitude seven strikes coastal city breaking news",
       "major earthquake hits coastal city magnitude seven reported",
       "coastal city rocked by magnitude seven earthquake"},
      {"champions league final ends with dramatic penalty shootout",
       "dramatic penalty shootout decides champions league final",
       "champions league final decided on penalties what a night"},
      {"central bank raises interest rates by fifty basis points",
       "interest rates raised fifty basis points by central bank",
       "rate hike central bank moves fifty basis points"},
  };
  const std::vector<std::string> chatter = {
      "just had the best coffee of my life",
      "anyone else watching the sunset right now",
      "new personal record at the gym today",
      "my cat knocked the plant over again",
      "finally finished reading that novel",
      "traffic on the bridge is terrible this morning",
      "trying a new pasta recipe tonight",
      "does anyone know a good dentist downtown",
  };
  std::vector<std::pair<double, std::string>> feed;
  double now = 0.0;
  for (int i = 0; i < n; ++i) {
    now += rng.NextExponential(1.0);
    if (rng.NextBool(0.35)) {
      const auto& story = stories[rng.NextBelow(stories.size())];
      feed.emplace_back(now, story[rng.NextBelow(story.size())]);
    } else {
      std::string msg = chatter[rng.NextBelow(chatter.size())];
      msg += " " + std::to_string(rng.NextBelow(1000));  // unique-ify
      feed.emplace_back(now, msg);
    }
  }
  return feed;
}

}  // namespace

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.GetInt("messages", 400));
  const double theta = flags.GetDouble("theta", 0.75);
  const double tau = flags.GetDouble("tau", 30.0);

  // Application-level parameter recipe (§3): choose θ as the minimum
  // content similarity of "the same story", τ as the staleness horizon,
  // derive λ.
  sssj::DecayParams params;
  if (!sssj::DecayParams::FromApplicationSpec(theta, tau, &params)) {
    std::fprintf(stderr, "bad theta/tau\n");
    return 1;
  }

  // One sink bound at creation; `is_duplicate` is reset before each push,
  // so the callback flags the message currently being processed (STR
  // emits synchronously inside Push).
  bool is_duplicate = false;
  sssj::CallbackSink sink([&](const sssj::ResultPair& p) {
    // p.b is the current message; p.a an earlier similar one. If the
    // earlier one was shown (not itself suppressed), suppress this one.
    (void)p;
    is_duplicate = true;
  });

  sssj::EngineConfig config;
  config.framework = sssj::Framework::kStreaming;
  config.index = sssj::IndexScheme::kL2;
  config.theta = params.theta;
  config.lambda = params.lambda;
  auto engine_or = sssj::SssjEngine::Make(config, &sink);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = *std::move(engine_or);

  sssj::Rng rng(7);
  const auto feed = SimulateFeed(n, rng);

  sssj::TfIdfVectorizer tfidf;
  std::unordered_set<sssj::VectorId> duplicate_of_shown;
  int shown = 0, suppressed = 0, skipped = 0;
  std::vector<std::string> sample_suppressed;

  for (const auto& [ts, text] : feed) {
    const sssj::VectorId id = engine->next_id();
    is_duplicate = false;
    const sssj::SparseVector vec = tfidf.AddAndTransform(text);
    if (vec.empty() || !engine->Push(ts, vec).ok()) {
      ++skipped;  // vocabulary too fresh to vectorize — show it
      continue;
    }
    if (is_duplicate) {
      ++suppressed;
      duplicate_of_shown.insert(id);
      if (sample_suppressed.size() < 5) sample_suppressed.push_back(text);
    } else {
      ++shown;
    }
  }

  std::printf("near-duplicate filter over %d messages "
              "(theta=%.2f, tau=%.0fs, lambda=%.4f):\n",
              n, params.theta, params.tau, params.lambda);
  std::printf("  shown: %d   suppressed as near-duplicates: %d   "
              "unvectorizable: %d\n",
              shown, suppressed, skipped);
  std::printf("  sample suppressed messages:\n");
  for (const auto& s : sample_suppressed) std::printf("    - %s\n", s.c_str());
  const auto& st = engine->stats();
  std::printf("  join work: %llu posting entries traversed, %llu pairs\n",
              static_cast<unsigned long long>(st.entries_traversed),
              static_cast<unsigned long long>(st.pairs_emitted));
  return suppressed > 0 ? 0 : 2;  // the demo should always find duplicates
}
