// Stream-format converter (the paper ships one too: "for the experiments
// we use a more compact and faster-to-read binary format; the
// text-to-binary converter is also included in the source code").
//
//   ./examples/text2bin input.txt output.bin          # text → binary
//   ./examples/text2bin --to-text input.bin out.txt   # binary → text
//   flags: --no-normalize --unordered
#include <cstdio>
#include <string>

#include "data/io.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  if (flags.positional().size() != 2) {
    std::fprintf(stderr,
                 "usage: %s [--to-text] [--no-normalize] [--unordered] "
                 "<input> <output>\n",
                 flags.program().c_str());
    return 1;
  }
  const std::string& in = flags.positional()[0];
  const std::string& out = flags.positional()[1];
  const bool to_text = flags.GetBool("to-text", false);

  sssj::ReadOptions opts;
  opts.normalize = !flags.GetBool("no-normalize", false);
  opts.require_ordered = !flags.GetBool("unordered", false);

  sssj::Stream stream;
  const sssj::Status read_status =
      to_text ? sssj::ReadBinaryStream(in, &stream, opts)
              : sssj::ReadTextStream(in, &stream, opts);
  if (!read_status.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 read_status.ToString().c_str());
    return 1;
  }
  const sssj::Status write_status = to_text
                                        ? sssj::WriteTextStream(stream, out)
                                        : sssj::WriteBinaryStream(stream, out);
  if (!write_status.ok()) {
    std::fprintf(stderr, "write failed: %s\n",
                 write_status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "converted %zu vectors: %s -> %s\n", stream.size(),
               in.c_str(), out.c_str());
  return 0;
}
