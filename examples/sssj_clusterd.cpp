// sssj_clusterd — the cluster front door: forks a worker fleet and
// serves the frame protocol on a Unix-domain socket, routing sessions
// across workers by rendezvous hash and supervising crashes.
//
//   ./sssj_clusterd --workers=4 --socket=/tmp/sssj-cluster.sock
//                   [--spill-dir=DIR] [--checkpoint-interval=N]
//
// Clients speak the same wire format a worker does; the router maps
// each request to the session's home worker, journals acked mutations,
// and on a worker crash restarts + restores it transparently — callers
// just see their request take a little longer. One client connection is
// served at a time; a disconnected client can reconnect and continue
// (sessions live in the workers, not the connection). kShutdown stops
// the fleet and exits.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cluster/channel.h"
#include "cluster/supervisor.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

// Translates one client frame into the matching Supervisor call. The
// router intentionally speaks the same protocol as a worker, so a
// client needs no special "cluster mode" — only kRestore/kMigrateOut
// (supervisor-internal machinery) are refused.
sssj::cluster::Reply Route(sssj::cluster::Supervisor* supervisor,
                           sssj::cluster::FrameType type,
                           const std::string& payload, bool* shutdown) {
  using sssj::Status;
  namespace cl = sssj::cluster;
  cl::Reply reply;
  switch (type) {
    case cl::FrameType::kHello: {
      cl::HelloPayload hello;
      reply.status = cl::DecodeHello(payload, &hello);
      if (reply.status.ok() && hello.version != cl::kWireVersion) {
        reply.status = Status::FailedPrecondition(
            "wire protocol version mismatch: client speaks " +
            std::to_string(hello.version));
      }
      reply.blob = cl::EncodeHello(cl::HelloPayload{});
      return reply;
    }
    case cl::FrameType::kCreateSession: {
      cl::CreateSessionRequest req;
      reply.status = cl::DecodeCreateSession(payload, &req);
      if (!reply.status.ok()) return reply;
      reply.status = supervisor->CreateSession(req.name, req.config);
      return reply;
    }
    case cl::FrameType::kPush: {
      cl::PushRequest req;
      reply.status = cl::DecodePush(payload, &req);
      if (!reply.status.ok()) return reply;
      reply.status = supervisor->Push(req.name, req.ts, std::move(req.vec),
                                      &reply.pairs);
      if (reply.status.ok()) reply.accepted = 1;
      return reply;
    }
    case cl::FrameType::kPushBatch: {
      cl::PushBatchRequest req;
      reply.status = cl::DecodePushBatch(payload, &req);
      if (!reply.status.ok()) return reply;
      sssj::Stream batch;
      batch.reserve(req.items.size());
      for (auto& [ts, vec] : req.items) {
        sssj::StreamItem item;
        item.ts = ts;
        item.vec = std::move(vec);
        batch.push_back(std::move(item));
      }
      auto result = supervisor->PushBatch(req.name, batch, &reply.pairs);
      if (!result.ok()) {
        reply.status = result.status();
        return reply;
      }
      reply.accepted = result->accepted;
      for (const auto& reject : result->rejects) {
        reply.rejects.emplace_back(static_cast<uint32_t>(reject.index),
                                   reject.status);
      }
      return reply;
    }
    case cl::FrameType::kFlush: {
      cl::NameRequest req;
      reply.status = cl::DecodeName(payload, &req);
      if (!reply.status.ok()) return reply;
      reply.status = supervisor->Flush(req.name, &reply.pairs);
      return reply;
    }
    case cl::FrameType::kCheckpoint: {
      cl::NameRequest req;
      reply.status = cl::DecodeName(payload, &req);
      if (!reply.status.ok()) return reply;
      reply.status = supervisor->Checkpoint(req.name);
      return reply;
    }
    case cl::FrameType::kCloseSession: {
      cl::NameRequest req;
      reply.status = cl::DecodeName(payload, &req);
      if (!reply.status.ok()) return reply;
      reply.status = supervisor->CloseSession(req.name, &reply.pairs);
      return reply;
    }
    case cl::FrameType::kStats: {
      cl::NameRequest req;
      reply.status = cl::DecodeName(payload, &req);
      if (!reply.status.ok()) return reply;
      auto stats = supervisor->SessionStats(req.name);
      if (!stats.ok()) {
        reply.status = stats.status();
        return reply;
      }
      reply.blob = cl::EncodeSessionStats(*stats);
      return reply;
    }
    case cl::FrameType::kShutdown:
      *shutdown = true;
      return reply;
    default:
      reply.status = Status::Unimplemented(
          std::string("the router does not accept ") + cl::ToString(type) +
          " frames");
      return reply;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  sssj::cluster::SupervisorOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--socket", &value)) {
      socket_path = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      options.num_workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--spill-dir", &value)) {
      options.worker_service.spill_dir = value;
    } else if (ParseFlag(argv[i], "--checkpoint-interval", &value)) {
      options.checkpoint_interval =
          std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: sssj_clusterd --workers=K --socket=PATH "
                   "[--spill-dir=DIR] [--checkpoint-interval=N]\n");
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "sssj_clusterd: --socket=PATH is required\n");
    return 2;
  }

  // Fork the fleet BEFORE opening the listener: fork must happen while
  // this process is single-threaded and owns no client state.
  sssj::cluster::Supervisor supervisor(options);
  sssj::Status status = supervisor.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "sssj_clusterd: %s\n", status.ToString().c_str());
    return 1;
  }
  int listen_fd = -1;
  status = sssj::cluster::ListenUnix(socket_path, &listen_fd);
  if (!status.ok()) {
    std::fprintf(stderr, "sssj_clusterd: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "sssj_clusterd: %d workers, serving on %s\n",
               options.num_workers, socket_path.c_str());

  bool shutdown = false;
  while (!shutdown) {
    int conn_fd = -1;
    status = sssj::cluster::AcceptOne(listen_fd, &conn_fd);
    if (!status.ok()) {
      std::fprintf(stderr, "sssj_clusterd: %s\n", status.ToString().c_str());
      return 1;
    }
    sssj::cluster::FrameChannel channel(conn_fd);
    while (!shutdown) {
      sssj::cluster::FrameType type;
      std::string payload;
      status = channel.Recv(&type, &payload);
      if (!status.ok()) break;  // client went away; accept the next one
      const sssj::cluster::Reply reply =
          Route(&supervisor, type, payload, &shutdown);
      status = channel.Send(sssj::cluster::FrameType::kReply,
                            sssj::cluster::EncodeReply(reply));
      if (!status.ok()) break;
    }
  }
  supervisor.Shutdown();
  std::fprintf(stderr, "sssj_clusterd: shutdown\n");
  return 0;
}
