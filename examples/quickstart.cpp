// Quickstart: the 60-second tour of the sssj v2 public API.
//
//   ./examples/quickstart
//
// Builds a streaming engine (STR framework, L2 index) with a sink
// pipeline bound at creation, feeds a small timestamped stream with
// Status-checked pushes, and prints every time-dependent similar pair as
// soon as it is discovered.
#include <cstdio>

#include "core/engine.h"
#include "core/sinks.h"

int main() {
  // 1. Pick the join parameters. θ is the similarity threshold; λ is the
  //    time-decay rate. Together they define the horizon τ = ln(1/θ)/λ
  //    beyond which no pair can be similar. You can also derive λ from an
  //    application-level spec with DecayParams::FromApplicationSpec.
  sssj::EngineConfig config;
  config.framework = sssj::Framework::kStreaming;  // or kMiniBatch
  config.index = sssj::IndexScheme::kL2;           // INV, L2AP, L2
  config.theta = 0.7;
  config.lambda = 0.05;

  // 2. Results flow through a sink chain bound at engine creation. Here:
  //    every pair goes to a callback AND the 3 best pairs are tracked —
  //    TeeSink fans out, TopKSink keeps the best-k by decayed similarity.
  //    (CollectorSink, FilterSink, SamplingSink compose the same way.)
  sssj::CallbackSink printer([](const sssj::ResultPair& p) {
    std::printf("  similar: #%llu (t=%.1f) ~ #%llu (t=%.1f)  "
                "cosine=%.3f  decayed=%.3f\n",
                static_cast<unsigned long long>(p.a), p.ta,
                static_cast<unsigned long long>(p.b), p.tb, p.dot, p.sim);
  });
  sssj::TopKSink best(3);
  sssj::TeeSink sink({&printer, &best});

  // 3. Every fallible call returns sssj::Status (or StatusOr<T>) naming
  //    exactly what went wrong — no more nullptr/bool guessing.
  auto engine_or = sssj::SssjEngine::Make(config, &sink);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = *std::move(engine_or);
  std::printf("engine: %s-%s, theta=%.2f lambda=%.3f horizon=%.1f\n",
              sssj::ToString(config.framework), sssj::ToString(config.index),
              config.theta, config.lambda, engine->params().tau);

  // 4. Feed timestamped sparse vectors (they are unit-normalized for you).
  //    Vectors are (dimension, weight) lists — think TF-IDF over terms.
  using sssj::Coord;
  struct Doc {
    double ts;
    std::vector<Coord> coords;
  };
  const std::vector<Doc> docs = {
      {0.0, {{1, 1.0}, {2, 2.0}, {3, 1.0}}},   // #0
      {1.0, {{1, 1.0}, {2, 2.1}, {3, 0.9}}},   // #1: near-copy of #0
      {2.0, {{7, 1.0}, {8, 1.0}}},             // #2: unrelated
      {3.0, {{1, 1.0}, {2, 2.0}, {3, 1.1}}},   // #3: near-copy again
      {60.0, {{1, 1.0}, {2, 2.0}, {3, 1.0}}},  // #4: same content, but far
                                               // in time — beyond τ ≈ 7.1
  };
  for (const Doc& d : docs) {
    const sssj::Status status =
        engine->Push(d.ts, sssj::SparseVector::FromCoords(d.coords));
    if (!status.ok()) {
      std::fprintf(stderr, "push rejected: %s\n", status.ToString().c_str());
    }
  }

  // 5. Flush at end-of-stream (a no-op for STR; required for MB, which
  //    buffers up to two windows).
  engine->Flush();

  const sssj::RunStats& stats = engine->stats();
  std::printf("processed %llu vectors, emitted %llu pairs, "
              "traversed %llu posting entries\n",
              static_cast<unsigned long long>(stats.vectors_processed),
              static_cast<unsigned long long>(stats.pairs_emitted),
              static_cast<unsigned long long>(stats.entries_traversed));
  std::printf("best pair kept by TopKSink: ");
  const auto top = best.TopPairs();
  if (!top.empty()) {
    std::printf("#%llu ~ #%llu (decayed=%.3f)\n",
                static_cast<unsigned long long>(top[0].a),
                static_cast<unsigned long long>(top[0].b), top[0].sim);
  } else {
    std::printf("none\n");
  }
  return 0;
}
