// Quickstart: the 60-second tour of the sssj public API.
//
//   ./examples/quickstart
//
// Builds a streaming engine (STR framework, L2 index), feeds a small
// timestamped stream, and prints every time-dependent similar pair as soon
// as it is discovered.
#include <cstdio>

#include "core/engine.h"

int main() {
  // 1. Pick the join parameters. θ is the similarity threshold; λ is the
  //    time-decay rate. Together they define the horizon τ = ln(1/θ)/λ
  //    beyond which no pair can be similar. You can also derive λ from an
  //    application-level spec with DecayParams::FromApplicationSpec.
  sssj::EngineConfig config;
  config.framework = sssj::Framework::kStreaming;  // or kMiniBatch
  config.index = sssj::IndexScheme::kL2;           // INV, L2AP, L2
  config.theta = 0.7;
  config.lambda = 0.05;

  auto engine = sssj::SssjEngine::Create(config);
  if (engine == nullptr) {
    std::fprintf(stderr, "invalid engine configuration\n");
    return 1;
  }
  std::printf("engine: %s-%s, theta=%.2f lambda=%.3f horizon=%.1f\n",
              sssj::ToString(config.framework), sssj::ToString(config.index),
              config.theta, config.lambda, engine->params().tau);

  // 2. Results arrive through a sink; CallbackSink invokes a lambda for
  //    each discovered pair (STR reports pairs immediately on arrival).
  sssj::CallbackSink sink([](const sssj::ResultPair& p) {
    std::printf("  similar: #%llu (t=%.1f) ~ #%llu (t=%.1f)  "
                "cosine=%.3f  decayed=%.3f\n",
                static_cast<unsigned long long>(p.a), p.ta,
                static_cast<unsigned long long>(p.b), p.tb, p.dot, p.sim);
  });

  // 3. Feed timestamped sparse vectors (they are unit-normalized for you).
  //    Vectors are (dimension, weight) lists — think TF-IDF over terms.
  using sssj::Coord;
  struct Doc {
    double ts;
    std::vector<Coord> coords;
  };
  const std::vector<Doc> docs = {
      {0.0, {{1, 1.0}, {2, 2.0}, {3, 1.0}}},   // #0
      {1.0, {{1, 1.0}, {2, 2.1}, {3, 0.9}}},   // #1: near-copy of #0
      {2.0, {{7, 1.0}, {8, 1.0}}},             // #2: unrelated
      {3.0, {{1, 1.0}, {2, 2.0}, {3, 1.1}}},   // #3: near-copy again
      {60.0, {{1, 1.0}, {2, 2.0}, {3, 1.0}}},  // #4: same content, but far
                                               // in time — beyond τ ≈ 7.1
  };
  for (const Doc& d : docs) {
    engine->Push(d.ts, sssj::SparseVector::FromCoords(d.coords), &sink);
  }

  // 4. Flush at end-of-stream (a no-op for STR; required for MB, which
  //    buffers up to two windows).
  engine->Flush(&sink);

  const sssj::RunStats& stats = engine->stats();
  std::printf("processed %llu vectors, emitted %llu pairs, "
              "traversed %llu posting entries\n",
              static_cast<unsigned long long>(stats.vectors_processed),
              static_cast<unsigned long long>(stats.pairs_emitted),
              static_cast<unsigned long long>(stats.entries_traversed));
  return 0;
}
