// Trend detection — the paper's first motivating application (§1): instead
// of counting single hashtags, detect *groups of similar posts* whose
// frequency spikes within a short time span.
//
// Pipeline: synthetic post stream with an injected "event" burst →
// STR-L2 similarity join → online union-find over similar pairs (pairs
// expire with the horizon, so clusters are inherently recent) → report
// clusters whose size within the window crosses a trend threshold.
//
//   ./examples/trend_detection [--posts=3000] [--theta=0.6] [--tau=20]
//                              [--trend-size=8]
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

// Union-find keyed by vector id (path compression, no ranks — fine here).
class UnionFind {
 public:
  sssj::VectorId Find(sssj::VectorId x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    if (it->second == x) return x;
    const sssj::VectorId root = Find(it->second);
    parent_[x] = root;
    return root;
  }
  void Union(sssj::VectorId a, sssj::VectorId b) {
    parent_[Find(a)] = Find(b);
  }

 private:
  std::unordered_map<sssj::VectorId, sssj::VectorId> parent_;
};

}  // namespace

int main(int argc, char** argv) {
  sssj::Flags flags(argc, argv);
  const int n_posts = static_cast<int>(flags.GetInt("posts", 3000));
  const double theta = flags.GetDouble("theta", 0.6);
  const double tau = flags.GetDouble("tau", 20.0);
  const size_t trend_size =
      static_cast<size_t>(flags.GetInt("trend-size", 8));

  sssj::DecayParams params;
  if (!sssj::DecayParams::FromApplicationSpec(theta, tau, &params)) {
    std::fprintf(stderr, "bad theta/tau\n");
    return 1;
  }

  // Background chatter: sparse Tweets-like vectors, low duplicate rate.
  sssj::CorpusSpec spec;
  spec.num_vectors = n_posts;
  spec.num_dims = 30000;
  spec.avg_nnz = 10;
  spec.near_dup_rate = 0.01;
  spec.arrivals.kind = sssj::ArrivalModel::Kind::kPoisson;
  spec.arrivals.rate = 2.0;
  spec.seed = 11;
  sssj::CorpusGenerator gen(spec);

  // The injected event: in a 10-time-unit window mid-stream, a burst of
  // posts all talk about the same thing (shared dims 3..10 with noise).
  sssj::Rng rng(13);
  const double event_start = n_posts / spec.arrivals.rate / 2.0;
  const double event_end = event_start + 10.0;
  int event_posts = 0;

  UnionFind clusters;
  std::unordered_map<sssj::VectorId, double> first_seen;
  sssj::CallbackSink sink([&](const sssj::ResultPair& p) {
    clusters.Union(p.a, p.b);
  });

  sssj::EngineConfig config;
  config.framework = sssj::Framework::kStreaming;
  config.index = sssj::IndexScheme::kL2;
  config.theta = params.theta;
  config.lambda = params.lambda;
  auto engine_or = sssj::SssjEngine::Make(config, &sink);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = *std::move(engine_or);

  std::unordered_map<sssj::VectorId, bool> is_event_post;
  while (gen.HasNext()) {
    sssj::StreamItem item = gen.Next();
    bool event = false;
    if (item.ts >= event_start && item.ts <= event_end &&
        rng.NextBool(0.5)) {
      // Replace the post with an event post: common core + noise.
      std::vector<sssj::Coord> coords;
      for (sssj::DimId d = 3; d <= 10; ++d) {
        coords.push_back({d, 0.8 + 0.4 * rng.NextDouble()});
      }
      coords.push_back({static_cast<sssj::DimId>(100 + rng.NextBelow(50)),
                        0.3 * rng.NextDouble() + 0.05});
      item.vec = sssj::SparseVector::UnitFromCoords(std::move(coords));
      event = true;
      ++event_posts;
    }
    const sssj::VectorId id = engine->next_id();
    if (engine->Push(item.ts, item.vec).ok()) {
      first_seen[id] = item.ts;
      is_event_post[id] = event;
    }
  }
  engine->Flush();

  // Aggregate cluster sizes.
  std::map<sssj::VectorId, std::vector<sssj::VectorId>> groups;
  for (const auto& [id, ts] : first_seen) {
    groups[clusters.Find(id)].push_back(id);
  }

  std::printf("trend detection over %d posts (theta=%.2f, tau=%.0f, "
              "injected event: %d posts in [%.0f, %.0f]):\n",
              n_posts, params.theta, params.tau, event_posts, event_start,
              event_end);
  int trends = 0;
  for (const auto& [root, members] : groups) {
    if (members.size() < trend_size) continue;
    ++trends;
    double lo = 1e18, hi = -1e18;
    int event_members = 0;
    for (sssj::VectorId id : members) {
      lo = std::min(lo, first_seen[id]);
      hi = std::max(hi, first_seen[id]);
      event_members += is_event_post[id] ? 1 : 0;
    }
    std::printf("  TREND: %zu similar posts in window [%.1f, %.1f] "
                "(%d/%zu from the injected event)\n",
                members.size(), lo, hi, event_members, members.size());
  }
  if (trends == 0) {
    std::printf("  no trend detected — tune --theta/--trend-size\n");
    return 2;
  }
  const auto& st = engine->stats();
  std::printf("join stats: %llu pairs, %llu entries traversed, peak index "
              "%llu entries\n",
              static_cast<unsigned long long>(st.pairs_emitted),
              static_cast<unsigned long long>(st.entries_traversed),
              static_cast<unsigned long long>(st.peak_index_entries));
  return 0;
}
